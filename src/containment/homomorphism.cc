#include "containment/homomorphism.h"

#include <algorithm>

#include "common/budget.h"
#include "trace/trace.h"

namespace relcont {

namespace {

// Search statistics accumulated on the stack during one mapping search and
// flushed to the active trace once at the end — the innermost loop never
// touches thread-local state.
struct SearchStats {
  uint64_t candidates = 0;
  uint64_t backtracks = 0;
  uint64_t found = 0;
};

// Matches a pattern term (variables of `from` are match variables) against
// a target term (variables of `to` are opaque, frozen symbols).
bool MatchTermFrozen(const Term& pattern, const Term& target,
                     Substitution* subst) {
  switch (pattern.kind()) {
    case Term::Kind::kVariable: {
      std::optional<Term> bound = subst->Lookup(pattern.symbol());
      if (bound.has_value()) return *bound == target;
      subst->Bind(pattern.symbol(), target);
      return true;
    }
    case Term::Kind::kConstant:
      return target.is_constant() && pattern.value() == target.value();
    case Term::Kind::kFunction: {
      if (!target.is_function() || target.symbol() != pattern.symbol() ||
          target.args().size() != pattern.args().size()) {
        return false;
      }
      for (size_t i = 0; i < pattern.args().size(); ++i) {
        if (!MatchTermFrozen(pattern.args()[i], target.args()[i], subst)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool MatchAtomFrozen(const Atom& pattern, const Atom& target,
                     Substitution* subst) {
  if (pattern.predicate != target.predicate ||
      pattern.args.size() != target.args.size()) {
    return false;
  }
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    if (!MatchTermFrozen(pattern.args[i], target.args[i], subst)) return false;
  }
  return true;
}

// Matches the heads positionally, ignoring the head predicate symbol.
bool MatchHead(const Atom& pattern, const Atom& target, Substitution* subst) {
  if (pattern.args.size() != target.args.size()) return false;
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    if (!MatchTermFrozen(pattern.args[i], target.args[i], subst)) return false;
  }
  return true;
}

bool Backtrack(const Rule& from, const Rule& to,
               const std::vector<int>& order, size_t depth,
               Substitution* subst,
               const std::function<bool(const Substitution&)>& visit,
               SearchStats* stats, WorkBudget* budget) {
  // One budget step per search node. On exhaustion the search unwinds
  // reporting "not found"; callers must treat that negative as
  // inconclusive (the BudgetOkOrBound idiom) — a visited mapping is still
  // a real mapping.
  if (budget != nullptr && !budget->Charge(1)) return false;
  if (depth == order.size()) {
    if (stats != nullptr) ++stats->found;
    return visit(*subst);
  }
  const Atom& pattern = from.body[order[depth]];
  for (const Atom& candidate : to.body) {
    Substitution extended = *subst;
    if (stats != nullptr) ++stats->candidates;
    if (!MatchAtomFrozen(pattern, candidate, &extended)) continue;
    if (Backtrack(from, to, order, depth + 1, &extended, visit, stats,
                  budget)) {
      return true;
    }
    if (stats != nullptr) ++stats->backtracks;
  }
  return false;
}

}  // namespace

bool ForEachContainmentMapping(
    const Rule& from, const Rule& to,
    const std::function<bool(const Substitution&)>& visit) {
#if RELCONT_TRACE
  trace::TraceContext* trace_ctx = trace::CurrentTrace();
  SearchStats stats;
  SearchStats* stats_ptr = trace_ctx != nullptr ? &stats : nullptr;
#else
  SearchStats* stats_ptr = nullptr;
#endif
  Substitution subst;
  if (!MatchHead(from.head, to.head, &subst)) {
#if RELCONT_TRACE
    if (trace_ctx != nullptr) {
      trace_ctx->AddCount(trace::Counter::kHomMappingCalls, 1);
    }
#endif
    return false;
  }
  // Visit atoms with fewer candidate targets first; this prunes early.
  std::vector<int> order(from.body.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::vector<int> candidates(from.body.size(), 0);
  for (size_t i = 0; i < from.body.size(); ++i) {
    for (const Atom& a : to.body) {
      if (a.predicate == from.body[i].predicate &&
          a.args.size() == from.body[i].args.size()) {
        ++candidates[i];
      }
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return candidates[a] < candidates[b]; });
  bool result =
      Backtrack(from, to, order, 0, &subst, visit, stats_ptr, CurrentBudget());
#if RELCONT_TRACE
  if (trace_ctx != nullptr) {
    trace_ctx->AddCount(trace::Counter::kHomMappingCalls, 1);
    trace_ctx->AddCount(trace::Counter::kHomCandidatesTried, stats.candidates);
    trace_ctx->AddCount(trace::Counter::kHomBacktracks, stats.backtracks);
    trace_ctx->AddCount(trace::Counter::kHomMappingsFound, stats.found);
  }
#endif
  return result;
}

std::optional<Substitution> FindContainmentMapping(const Rule& from,
                                                   const Rule& to) {
  std::optional<Substitution> found;
  ForEachContainmentMapping(from, to, [&](const Substitution& h) {
    found = h;
    return true;
  });
  return found;
}

}  // namespace relcont
