#include "datalog/program.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

namespace relcont {

namespace {

// Builds the IDB dependency graph: an edge p -> q when some rule with head
// p has q (an IDB predicate) in its body.
std::map<SymbolId, std::set<SymbolId>> BuildIdbGraph(
    const Program& program, const std::set<SymbolId>& idb) {
  std::map<SymbolId, std::set<SymbolId>> graph;
  for (SymbolId p : idb) graph[p];
  for (const Rule& r : program.rules) {
    for (const Atom& a : r.body) {
      if (idb.count(a.predicate) > 0) {
        graph[r.head.predicate].insert(a.predicate);
      }
    }
  }
  return graph;
}

// Depth-first detection of whether `node` can reach itself.
bool InCycle(const std::map<SymbolId, std::set<SymbolId>>& graph,
             SymbolId start) {
  std::unordered_set<SymbolId> visited;
  std::vector<SymbolId> stack(graph.at(start).begin(),
                              graph.at(start).end());
  while (!stack.empty()) {
    SymbolId cur = stack.back();
    stack.pop_back();
    if (cur == start) return true;
    if (!visited.insert(cur).second) continue;
    auto it = graph.find(cur);
    if (it == graph.end()) continue;
    stack.insert(stack.end(), it->second.begin(), it->second.end());
  }
  return false;
}

}  // namespace

std::set<SymbolId> Program::IdbPredicates() const {
  std::set<SymbolId> out;
  for (const Rule& r : rules) out.insert(r.head.predicate);
  return out;
}

std::set<SymbolId> Program::EdbPredicates() const {
  std::set<SymbolId> idb = IdbPredicates();
  std::set<SymbolId> out;
  for (const Rule& r : rules) {
    for (const Atom& a : r.body) {
      if (idb.count(a.predicate) == 0) out.insert(a.predicate);
    }
  }
  return out;
}

std::set<SymbolId> Program::AllPredicates() const {
  std::set<SymbolId> out = IdbPredicates();
  for (const Rule& r : rules) {
    for (const Atom& a : r.body) out.insert(a.predicate);
  }
  return out;
}

std::vector<Value> Program::Constants() const {
  std::vector<Value> out;
  for (const Rule& r : rules) {
    std::vector<Value> rule_consts = r.Constants();
    out.insert(out.end(), rule_consts.begin(), rule_consts.end());
  }
  return out;
}

bool Program::IsRecursive() const { return !RecursivePredicates().empty(); }

std::set<SymbolId> Program::RecursivePredicates() const {
  std::set<SymbolId> idb = IdbPredicates();
  auto graph = BuildIdbGraph(*this, idb);
  std::set<SymbolId> out;
  for (SymbolId p : idb) {
    if (InCycle(graph, p)) out.insert(p);
  }
  return out;
}

Status Program::CheckSafe() const {
  for (const Rule& r : rules) {
    RELCONT_RETURN_NOT_OK(r.CheckSafe());
  }
  return Status::OK();
}

std::vector<const Rule*> Program::RulesFor(SymbolId pred) const {
  std::vector<const Rule*> out;
  for (const Rule& r : rules) {
    if (r.head.predicate == pred) out.push_back(&r);
  }
  return out;
}

Result<std::vector<SymbolId>> Program::TopologicalIdbOrder() const {
  std::set<SymbolId> idb = IdbPredicates();
  auto graph = BuildIdbGraph(*this, idb);
  // Kahn's algorithm on the "defined before used" order: emit a predicate
  // once all IDB predicates it depends on have been emitted.
  std::map<SymbolId, int> pending;  // number of unemitted dependencies
  for (const auto& [p, deps] : graph) pending[p] = static_cast<int>(deps.size());
  std::vector<SymbolId> ready;
  for (const auto& [p, n] : pending) {
    if (n == 0) ready.push_back(p);
  }
  // Reverse adjacency: who depends on p.
  std::map<SymbolId, std::set<SymbolId>> dependents;
  for (const auto& [p, deps] : graph) {
    for (SymbolId d : deps) dependents[d].insert(p);
  }
  std::vector<SymbolId> order;
  while (!ready.empty()) {
    SymbolId p = ready.back();
    ready.pop_back();
    order.push_back(p);
    for (SymbolId q : dependents[p]) {
      if (--pending[q] == 0) ready.push_back(q);
    }
  }
  if (order.size() != idb.size()) {
    return Status::Unsupported("program is recursive; no topological order");
  }
  return order;
}

std::string Program::ToString(const Interner& interner) const {
  std::string out;
  for (const Rule& r : rules) {
    out += r.ToString(interner);
    out += '\n';
  }
  return out;
}

}  // namespace relcont
