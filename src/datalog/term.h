#ifndef RELCONT_DATALOG_TERM_H_
#define RELCONT_DATALOG_TERM_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/rational.h"

namespace relcont {

/// The payload of a constant term: either a number (dense-order domain used
/// by comparison predicates) or an uninterpreted symbolic constant ("red").
class Value {
 public:
  enum class Kind { kNumber, kSymbol };

  /// The number 0.
  Value() : kind_(Kind::kNumber), number_(0), symbol_(kInvalidSymbol) {}

  static Value Number(Rational r) {
    Value v;
    v.kind_ = Kind::kNumber;
    v.number_ = r;
    return v;
  }
  static Value Symbol(SymbolId s) {
    Value v;
    v.kind_ = Kind::kSymbol;
    v.symbol_ = s;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_symbol() const { return kind_ == Kind::kSymbol; }
  const Rational& number() const { return number_; }
  SymbolId symbol() const { return symbol_; }

  std::string ToString(const Interner& interner) const;

  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return false;
    return a.kind_ == Kind::kNumber ? a.number_ == b.number_
                                    : a.symbol_ == b.symbol_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  /// Arbitrary-but-total order, used for canonical forms. Numbers sort
  /// before symbols; this is *not* the dense-order comparison used by
  /// comparison predicates (symbols are not comparable there).
  friend bool operator<(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    if (a.kind_ == Kind::kNumber) return a.number_ < b.number_;
    return a.symbol_ < b.symbol_;
  }

  size_t Hash() const {
    return kind_ == Kind::kNumber
               ? number_.Hash() * 3u
               : static_cast<size_t>(symbol_) * 2654435761u + 1u;
  }

 private:
  Kind kind_;
  Rational number_;
  SymbolId symbol_;
};

/// A datalog term: a variable, a constant, or a (Skolem) function term.
/// Function terms arise only inside query plans produced by the inverse
/// rules algorithm; user queries and views never contain them.
///
/// Terms are immutable values; function-term argument vectors are shared.
class Term {
 public:
  enum class Kind { kVariable, kConstant, kFunction };

  /// Default-constructs the number 0 (needed for container use).
  Term() : kind_(Kind::kConstant), symbol_(kInvalidSymbol) {}

  static Term Var(SymbolId name) {
    Term t;
    t.kind_ = Kind::kVariable;
    t.symbol_ = name;
    return t;
  }
  static Term Constant(Value v) {
    Term t;
    t.kind_ = Kind::kConstant;
    t.value_ = v;
    return t;
  }
  static Term Number(Rational r) { return Constant(Value::Number(r)); }
  static Term Symbol(SymbolId s) { return Constant(Value::Symbol(s)); }
  static Term Function(SymbolId name, std::vector<Term> args);

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  bool is_function() const { return kind_ == Kind::kFunction; }

  /// Variable name or function symbol; invalid for constants.
  SymbolId symbol() const { return symbol_; }
  /// Constant payload; only valid for constants.
  const Value& value() const { return value_; }
  /// Function arguments; only valid for function terms.
  const std::vector<Term>& args() const { return *args_; }

  /// True iff no variable occurs in the term.
  bool IsGround() const;
  /// True iff a function symbol occurs anywhere in the term.
  bool ContainsFunction() const;
  /// True iff variable `var` occurs anywhere in the term.
  bool ContainsVar(SymbolId var) const;
  /// Appends every variable occurring in the term to `out` (with repeats).
  void CollectVars(std::vector<SymbolId>* out) const;

  std::string ToString(const Interner& interner) const;

  friend bool operator==(const Term& a, const Term& b);
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  /// Total order for canonical forms.
  friend bool operator<(const Term& a, const Term& b);

  size_t Hash() const;

 private:
  Kind kind_;
  SymbolId symbol_ = kInvalidSymbol;
  Value value_;
  std::shared_ptr<const std::vector<Term>> args_;
};

/// Hash functor for unordered containers of terms.
struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

/// Hash functor for tuples of terms (database rows, atom argument lists).
struct TermVecHash {
  size_t operator()(const std::vector<Term>& ts) const {
    size_t h = 1469598103934665603ull;
    for (const Term& t : ts) {
      h ^= t.Hash();
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace relcont

#endif  // RELCONT_DATALOG_TERM_H_
