#include "datalog/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace relcont {

namespace {

enum class TokenKind {
  kIdent,     // foo, Bar, _x
  kNumber,    // 12, -3, 12.5, 25/2
  kQuoted,    // 'red car'
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kImplies,   // :-
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  Lexer(std::string_view text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    int line = 1;
    auto n = text_.size();
    while (i < n) {
      char c = text_[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '%') {
        while (i < n && text_[i] != '\n') ++i;
        continue;
      }
      if (c == '(') {
        out->push_back({TokenKind::kLParen, "(", line});
        ++i;
        continue;
      }
      if (c == ')') {
        out->push_back({TokenKind::kRParen, ")", line});
        ++i;
        continue;
      }
      if (c == ',') {
        out->push_back({TokenKind::kComma, ",", line});
        ++i;
        continue;
      }
      if (c == ':') {
        if (i + 1 < n && text_[i + 1] == '-') {
          out->push_back({TokenKind::kImplies, ":-", line});
          i += 2;
          continue;
        }
        return Err(line, "expected ':-'");
      }
      if (c == '<') {
        if (i + 1 < n && text_[i + 1] == '=') {
          out->push_back({TokenKind::kLe, "<=", line});
          i += 2;
        } else {
          out->push_back({TokenKind::kLt, "<", line});
          ++i;
        }
        continue;
      }
      if (c == '>') {
        if (i + 1 < n && text_[i + 1] == '=') {
          out->push_back({TokenKind::kGe, ">=", line});
          i += 2;
        } else {
          out->push_back({TokenKind::kGt, ">", line});
          ++i;
        }
        continue;
      }
      if (c == '=') {
        out->push_back({TokenKind::kEq, "=", line});
        ++i;
        continue;
      }
      if (c == '!') {
        if (i + 1 < n && text_[i + 1] == '=') {
          out->push_back({TokenKind::kNe, "!=", line});
          i += 2;
          continue;
        }
        return Err(line, "expected '!='");
      }
      if (c == '\'') {
        size_t j = i + 1;
        while (j < n && text_[j] != '\'') ++j;
        if (j >= n) return Err(line, "unterminated quoted constant");
        out->push_back(
            {TokenKind::kQuoted, std::string(text_.substr(i + 1, j - i - 1)),
             line});
        i = j + 1;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        size_t j = i + 1;
        while (j < n && (std::isdigit(static_cast<unsigned char>(text_[j])) ||
                         text_[j] == '/')) {
          ++j;
        }
        // Accept a decimal point only when followed by a digit, so that the
        // rule-terminating '.' in "p(1)." is not swallowed.
        if (j < n && text_[j] == '.' && j + 1 < n &&
            std::isdigit(static_cast<unsigned char>(text_[j + 1]))) {
          ++j;
          while (j < n &&
                 std::isdigit(static_cast<unsigned char>(text_[j]))) {
            ++j;
          }
        }
        out->push_back(
            {TokenKind::kNumber, std::string(text_.substr(i, j - i)), line});
        i = j;
        continue;
      }
      if (c == '.') {
        out->push_back({TokenKind::kPeriod, ".", line});
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i + 1;
        while (j < n && (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                         text_[j] == '_')) {
          ++j;
        }
        out->push_back(
            {TokenKind::kIdent, std::string(text_.substr(i, j - i)), line});
        i = j;
        continue;
      }
      return Err(line, std::string("unexpected character '") + c + "'");
    }
    out->push_back({TokenKind::kEnd, "", line});
    return Status::OK();
  }

 private:
  static Status Err(int line, const std::string& message) {
    return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                   message);
  }

  std::string_view text_;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, Interner* interner)
      : tokens_(std::move(tokens)), interner_(interner) {}

  Result<Program> ParseProgram() {
    Program program;
    while (Peek().kind != TokenKind::kEnd) {
      RELCONT_ASSIGN_OR_RETURN(Rule rule, ParseOneRule());
      program.rules.push_back(std::move(rule));
    }
    return program;
  }

  Result<Rule> ParseSingleRule() {
    RELCONT_ASSIGN_OR_RETURN(Rule rule, ParseOneRule());
    if (Peek().kind != TokenKind::kEnd) {
      return Err("trailing input after rule");
    }
    return rule;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_++]; }
  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokenKind kind, const char* what) {
    if (!Accept(kind)) return Err(std::string("expected ") + what);
    return Status::OK();
  }
  Status Err(const std::string& message) const {
    return Status::InvalidArgument("line " + std::to_string(Peek().line) +
                                   ": " + message);
  }

  static bool IsVariableName(const std::string& name) {
    return !name.empty() &&
           (std::isupper(static_cast<unsigned char>(name[0])) ||
            name[0] == '_');
  }

  Result<Rule> ParseOneRule() {
    RELCONT_ASSIGN_OR_RETURN(Atom head, ParseAtom());
    Rule rule;
    rule.head = std::move(head);
    if (Accept(TokenKind::kPeriod)) return rule;  // fact
    RELCONT_RETURN_NOT_OK(Expect(TokenKind::kImplies, "':-' or '.'"));
    for (;;) {
      RELCONT_RETURN_NOT_OK(ParseBodyLiteral(&rule));
      if (Accept(TokenKind::kComma)) continue;
      RELCONT_RETURN_NOT_OK(Expect(TokenKind::kPeriod, "'.'"));
      break;
    }
    return rule;
  }

  // A body literal is either a relational atom or a comparison
  // `term op term`.
  Status ParseBodyLiteral(Rule* rule) {
    // Comparison starting with a number or quoted constant.
    if (Peek().kind != TokenKind::kIdent ||
        IsComparisonAhead()) {
      RELCONT_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
      ComparisonOp op;
      RELCONT_RETURN_NOT_OK(ParseComparisonOp(&op));
      RELCONT_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      rule->comparisons.emplace_back(std::move(lhs), op, std::move(rhs));
      return Status::OK();
    }
    RELCONT_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    rule->body.push_back(std::move(atom));
    return Status::OK();
  }

  // True when the current position starts `ident op ...` (a comparison on a
  // variable or symbolic constant) rather than an atom.
  bool IsComparisonAhead() const {
    if (Peek().kind != TokenKind::kIdent) return true;
    TokenKind next = Peek(1).kind;
    return next == TokenKind::kLt || next == TokenKind::kLe ||
           next == TokenKind::kGt || next == TokenKind::kGe ||
           next == TokenKind::kEq || next == TokenKind::kNe;
  }

  Status ParseComparisonOp(ComparisonOp* op) {
    switch (Peek().kind) {
      case TokenKind::kLt:
        *op = ComparisonOp::kLt;
        break;
      case TokenKind::kLe:
        *op = ComparisonOp::kLe;
        break;
      case TokenKind::kGt:
        *op = ComparisonOp::kGt;
        break;
      case TokenKind::kGe:
        *op = ComparisonOp::kGe;
        break;
      case TokenKind::kEq:
        *op = ComparisonOp::kEq;
        break;
      case TokenKind::kNe:
        *op = ComparisonOp::kNe;
        break;
      default:
        return Err("expected comparison operator");
    }
    ++pos_;
    return Status::OK();
  }

  Result<Atom> ParseAtom() {
    if (Peek().kind != TokenKind::kIdent) {
      return Result<Atom>(Err("expected predicate name"));
    }
    std::string name = Next().text;
    Atom atom;
    atom.predicate = interner_->Intern(name);
    if (!Accept(TokenKind::kLParen)) return atom;  // zero-arity, bare form
    if (Accept(TokenKind::kRParen)) return atom;   // `q()`
    for (;;) {
      RELCONT_ASSIGN_OR_RETURN(Term t, ParseTerm());
      atom.args.push_back(std::move(t));
      if (Accept(TokenKind::kComma)) continue;
      RELCONT_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      break;
    }
    return atom;
  }

  Result<Term> ParseTerm() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kNumber: {
        Rational r;
        if (!Rational::Parse(tok.text, &r)) {
          return Result<Term>(Err("malformed number '" + tok.text + "'"));
        }
        ++pos_;
        return Term::Number(r);
      }
      case TokenKind::kQuoted: {
        SymbolId s = interner_->Intern(tok.text);
        ++pos_;
        return Term::Symbol(s);
      }
      case TokenKind::kIdent: {
        std::string name = Next().text;
        if (IsVariableName(name)) {
          return Term::Var(interner_->Intern(name));
        }
        // Lower-case identifier: function term if followed by '(', else a
        // symbolic constant.
        if (Accept(TokenKind::kLParen)) {
          std::vector<Term> args;
          if (!Accept(TokenKind::kRParen)) {
            for (;;) {
              RELCONT_ASSIGN_OR_RETURN(Term t, ParseTerm());
              args.push_back(std::move(t));
              if (Accept(TokenKind::kComma)) continue;
              RELCONT_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
              break;
            }
          }
          return Term::Function(interner_->Intern(name), std::move(args));
        }
        return Term::Symbol(interner_->Intern(name));
      }
      default:
        return Result<Term>(Err("expected term"));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Interner* interner_;
};

}  // namespace

Result<Rule> ParseRule(std::string_view text, Interner* interner) {
  std::vector<Token> tokens;
  RELCONT_RETURN_NOT_OK(Lexer(text).Tokenize(&tokens));
  return Parser(std::move(tokens), interner).ParseSingleRule();
}

Result<Program> ParseProgram(std::string_view text, Interner* interner) {
  std::vector<Token> tokens;
  RELCONT_RETURN_NOT_OK(Lexer(text).Tokenize(&tokens));
  return Parser(std::move(tokens), interner).ParseProgram();
}

}  // namespace relcont
