#include "datalog/unfold.h"

#include <vector>

#include "common/budget.h"
#include "datalog/substitution.h"
#include "trace/trace.h"

namespace relcont {

namespace {

class Unfolder {
 public:
  Unfolder(const Program& program, Interner* interner,
           const UnfoldOptions& options)
      : program_(program),
        interner_(interner),
        options_(options),
        idb_(program.IdbPredicates()) {}

  Result<UnionQuery> Run(SymbolId goal) {
    UnionQuery out;
    for (const Rule* rule : program_.RulesFor(goal)) {
      RELCONT_RETURN_NOT_OK(Expand(RenameApart(*rule, interner_), &out));
    }
    return out;
  }

 private:
  // Finds the first IDB subgoal of `rule`; if none, `rule` is fully
  // unfolded. Otherwise resolves it against every defining rule.
  Status Expand(const Rule& rule, UnionQuery* out) {
    RELCONT_RETURN_NOT_OK(BudgetChargeOr("unfold"));
    int idb_index = -1;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (idb_.count(rule.body[i].predicate) > 0) {
        idb_index = static_cast<int>(i);
        break;
      }
    }
    if (idb_index < 0) {
      if (static_cast<int64_t>(out->disjuncts.size()) >=
          options_.max_disjuncts) {
        return BoundReachedAt("unfold", "max_disjuncts exceeded (" +
                                            std::to_string(
                                                options_.max_disjuncts) +
                                            ")");
      }
      RELCONT_TRACE_COUNT(kUnfoldDisjuncts, 1);
      out->disjuncts.push_back(rule);
      return Status::OK();
    }
    const Atom& subgoal = rule.body[idb_index];
    for (const Rule* def : program_.RulesFor(subgoal.predicate)) {
      Rule fresh = RenameApart(*def, interner_);
      Substitution mgu;
      if (!UnifyAtoms(subgoal, fresh.head, &mgu)) continue;
      RELCONT_TRACE_COUNT(kUnfoldResolutions, 1);
      Rule resolved;
      resolved.head = mgu.Apply(rule.head);
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (static_cast<int>(i) == idb_index) {
          for (const Atom& a : fresh.body) resolved.body.push_back(mgu.Apply(a));
        } else {
          resolved.body.push_back(mgu.Apply(rule.body[i]));
        }
      }
      for (const Comparison& c : rule.comparisons) {
        resolved.comparisons.push_back(mgu.Apply(c));
      }
      for (const Comparison& c : fresh.comparisons) {
        resolved.comparisons.push_back(mgu.Apply(c));
      }
      RELCONT_RETURN_NOT_OK(Expand(resolved, out));
    }
    return Status::OK();
  }

  const Program& program_;
  Interner* interner_;
  const UnfoldOptions& options_;
  std::set<SymbolId> idb_;
};

}  // namespace

Result<UnionQuery> UnfoldToUnion(const Program& program, SymbolId goal,
                                 Interner* interner,
                                 const UnfoldOptions& options) {
  if (program.IsRecursive()) {
    return Status::Unsupported("cannot unfold a recursive program");
  }
  RELCONT_TRACE_SPAN("unfold");
  return Unfolder(program, interner, options).Run(goal);
}

}  // namespace relcont
