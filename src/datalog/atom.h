#ifndef RELCONT_DATALOG_ATOM_H_
#define RELCONT_DATALOG_ATOM_H_

#include <string>
#include <vector>

#include "datalog/term.h"

namespace relcont {

/// A relational atom p(t1, ..., tn).
struct Atom {
  SymbolId predicate = kInvalidSymbol;
  std::vector<Term> args;

  Atom() = default;
  Atom(SymbolId predicate_in, std::vector<Term> args_in)
      : predicate(predicate_in), args(std::move(args_in)) {}

  int arity() const { return static_cast<int>(args.size()); }
  bool IsGround() const;
  /// Appends all variables occurring in the atom to `out` (with repeats).
  void CollectVars(std::vector<SymbolId>* out) const;

  std::string ToString(const Interner& interner) const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.args == b.args;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    return a.args < b.args;
  }

  size_t Hash() const {
    return static_cast<size_t>(predicate) * 0x9e3779b97f4a7c15ull ^
           TermVecHash()(args);
  }
};

struct AtomHash {
  size_t operator()(const Atom& a) const { return a.Hash(); }
};

/// The comparison predicates of Section 5, interpreted over a dense order.
enum class ComparisonOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Returns the textual operator ("=", "!=", "<", "<=", ">", ">=").
const char* ComparisonOpToString(ComparisonOp op);
/// Returns the operator with sides swapped (< becomes >, etc.).
ComparisonOp FlipComparisonOp(ComparisonOp op);
/// Returns the negation over a total order (< becomes >=, = becomes !=...).
ComparisonOp NegateComparisonOp(ComparisonOp op);

/// A comparison subgoal `lhs op rhs`. Both sides are variables or numeric
/// constants; the paper requires every compared variable to also appear in
/// an ordinary subgoal (checked by safety analysis).
struct Comparison {
  ComparisonOp op = ComparisonOp::kEq;
  Term lhs;
  Term rhs;

  Comparison() = default;
  Comparison(Term lhs_in, ComparisonOp op_in, Term rhs_in)
      : op(op_in), lhs(std::move(lhs_in)), rhs(std::move(rhs_in)) {}

  /// True iff of the semi-interval form `x θ c` or `c θ x` with θ in
  /// {<, <=} or {>, >=} (Section 5.1 of the paper).
  bool IsSemiInterval() const;

  /// Evaluates the comparison on ground numeric terms. Returns false for
  /// non-ground or non-numeric operands.
  bool EvaluateGround() const;

  void CollectVars(std::vector<SymbolId>* out) const;

  std::string ToString(const Interner& interner) const;

  friend bool operator==(const Comparison& a, const Comparison& b) {
    return a.op == b.op && a.lhs == b.lhs && a.rhs == b.rhs;
  }
  friend bool operator<(const Comparison& a, const Comparison& b) {
    if (a.op != b.op) return a.op < b.op;
    if (a.lhs != b.lhs) return a.lhs < b.lhs;
    return a.rhs < b.rhs;
  }
};

}  // namespace relcont

#endif  // RELCONT_DATALOG_ATOM_H_
