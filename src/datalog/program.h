#ifndef RELCONT_DATALOG_PROGRAM_H_
#define RELCONT_DATALOG_PROGRAM_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"

namespace relcont {

/// A datalog program: a finite set of rules. Predicates appearing in some
/// rule head are IDB predicates; all others are EDB predicates (stored
/// relations — in data integration, the source relations).
struct Program {
  std::vector<Rule> rules;

  Program() = default;
  explicit Program(std::vector<Rule> rules_in) : rules(std::move(rules_in)) {}

  /// Predicates defined by rules (appear in some head).
  std::set<SymbolId> IdbPredicates() const;
  /// Predicates only read (appear in bodies but never in a head).
  std::set<SymbolId> EdbPredicates() const;
  /// All predicates mentioned anywhere.
  std::set<SymbolId> AllPredicates() const;
  /// All constants mentioned anywhere.
  std::vector<Value> Constants() const;

  /// True iff some IDB predicate depends on itself (directly or through
  /// other IDB predicates).
  bool IsRecursive() const;
  /// The set of IDB predicates that participate in a dependency cycle.
  std::set<SymbolId> RecursivePredicates() const;

  /// Checks that all rules are safe and no EDB predicate occurs in a head
  /// position alongside being declared EDB elsewhere (i.e. the IDB/EDB split
  /// is consistent by construction here, so this just checks rule safety).
  Status CheckSafe() const;

  /// Rules whose head predicate is `pred`.
  std::vector<const Rule*> RulesFor(SymbolId pred) const;

  /// For a nonrecursive program, returns IDB predicates in a bottom-up
  /// evaluation order (definitions before uses). Fails with kUnsupported if
  /// the program is recursive.
  Result<std::vector<SymbolId>> TopologicalIdbOrder() const;

  std::string ToString(const Interner& interner) const;
};

}  // namespace relcont

#endif  // RELCONT_DATALOG_PROGRAM_H_
