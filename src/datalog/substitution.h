#ifndef RELCONT_DATALOG_SUBSTITUTION_H_
#define RELCONT_DATALOG_SUBSTITUTION_H_

#include <optional>
#include <unordered_map>

#include "datalog/program.h"

namespace relcont {

/// A mapping from variables to terms, applied simultaneously.
class Substitution {
 public:
  Substitution() = default;

  /// Binds `var` to `term`, overwriting any previous binding.
  void Bind(SymbolId var, Term term) { map_[var] = std::move(term); }

  /// Returns the binding of `var`, or nullopt.
  std::optional<Term> Lookup(SymbolId var) const;

  bool Contains(SymbolId var) const { return map_.count(var) > 0; }
  bool empty() const { return map_.empty(); }
  size_t size() const { return map_.size(); }

  /// Applies the substitution to a term / atom / comparison / rule.
  /// Application recurses through function terms and is repeated until
  /// fixpoint on the *result* of a lookup (i.e. bindings may map variables
  /// to terms containing other bound variables, as produced by unification).
  /// Only safe for idempotent-after-chasing substitutions such as the ones
  /// unification builds; for containment mappings use ApplyOnce.
  Term Apply(const Term& t) const;
  Atom Apply(const Atom& a) const;
  Comparison Apply(const Comparison& c) const;
  Rule Apply(const Rule& r) const;

  /// Single-step application: each variable is replaced by its binding
  /// verbatim, with no chasing. This is the right semantics for
  /// containment mappings (homomorphisms), whose domain and range may
  /// share variable names — e.g. {X -> Y, Y -> X} — where chasing would
  /// not terminate.
  Term ApplyOnce(const Term& t) const;
  Atom ApplyOnce(const Atom& a) const;
  Comparison ApplyOnce(const Comparison& c) const;

  const std::unordered_map<SymbolId, Term>& map() const { return map_; }

 private:
  std::unordered_map<SymbolId, Term> map_;
};

/// Computes the most general unifier of `a` and `b` (with occurs check),
/// extending `subst` in place. Returns false if unification fails; on
/// failure `subst` may be partially extended and should be discarded.
bool UnifyTerms(const Term& a, const Term& b, Substitution* subst);

/// Unifies two atoms (same predicate and arity required).
bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* subst);

/// Renames every variable of `rule` to a fresh variable from `interner`,
/// making it variable-disjoint from everything interned so far.
Rule RenameApart(const Rule& rule, Interner* interner);

/// One-way matching of a rule term pattern against a ground term, extending
/// `subst`. Unlike unification the right side contributes no variables.
bool MatchTermAgainstGround(const Term& pattern, const Term& ground,
                            Substitution* subst);

/// Matches an atom's arguments against a ground tuple of the same arity.
bool MatchAtomAgainstGround(const Atom& pattern,
                            const std::vector<Term>& tuple,
                            Substitution* subst);

}  // namespace relcont

#endif  // RELCONT_DATALOG_SUBSTITUTION_H_
