#include "datalog/substitution.h"

namespace relcont {

std::optional<Term> Substitution::Lookup(SymbolId var) const {
  auto it = map_.find(var);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

Term Substitution::Apply(const Term& t) const {
  switch (t.kind()) {
    case Term::Kind::kConstant:
      return t;
    case Term::Kind::kVariable: {
      auto it = map_.find(t.symbol());
      if (it == map_.end()) return t;
      // Follow chains var -> var -> term created during unification.
      if (it->second.is_variable() && it->second.symbol() != t.symbol()) {
        return Apply(it->second);
      }
      if (it->second.is_function()) return Apply(it->second);
      return it->second;
    }
    case Term::Kind::kFunction: {
      std::vector<Term> args;
      args.reserve(t.args().size());
      for (const Term& a : t.args()) args.push_back(Apply(a));
      return Term::Function(t.symbol(), std::move(args));
    }
  }
  return t;
}

Atom Substitution::Apply(const Atom& a) const {
  Atom out;
  out.predicate = a.predicate;
  out.args.reserve(a.args.size());
  for (const Term& t : a.args) out.args.push_back(Apply(t));
  return out;
}

Comparison Substitution::Apply(const Comparison& c) const {
  return Comparison(Apply(c.lhs), c.op, Apply(c.rhs));
}

Rule Substitution::Apply(const Rule& r) const {
  Rule out;
  out.head = Apply(r.head);
  out.body.reserve(r.body.size());
  for (const Atom& a : r.body) out.body.push_back(Apply(a));
  out.comparisons.reserve(r.comparisons.size());
  for (const Comparison& c : r.comparisons) {
    out.comparisons.push_back(Apply(c));
  }
  return out;
}

Term Substitution::ApplyOnce(const Term& t) const {
  switch (t.kind()) {
    case Term::Kind::kConstant:
      return t;
    case Term::Kind::kVariable: {
      auto it = map_.find(t.symbol());
      return it == map_.end() ? t : it->second;
    }
    case Term::Kind::kFunction: {
      std::vector<Term> args;
      args.reserve(t.args().size());
      for (const Term& a : t.args()) args.push_back(ApplyOnce(a));
      return Term::Function(t.symbol(), std::move(args));
    }
  }
  return t;
}

Atom Substitution::ApplyOnce(const Atom& a) const {
  Atom out;
  out.predicate = a.predicate;
  out.args.reserve(a.args.size());
  for (const Term& t : a.args) out.args.push_back(ApplyOnce(t));
  return out;
}

Comparison Substitution::ApplyOnce(const Comparison& c) const {
  return Comparison(ApplyOnce(c.lhs), c.op, ApplyOnce(c.rhs));
}

namespace {

// Resolves `t` through the substitution until it is not a bound variable.
Term Walk(const Term& t, const Substitution& subst) {
  Term cur = t;
  while (cur.is_variable()) {
    std::optional<Term> next = subst.Lookup(cur.symbol());
    if (!next.has_value()) return cur;
    cur = *next;
  }
  return cur;
}

bool OccursIn(SymbolId var, const Term& t, const Substitution& subst) {
  Term w = Walk(t, subst);
  switch (w.kind()) {
    case Term::Kind::kVariable:
      return w.symbol() == var;
    case Term::Kind::kConstant:
      return false;
    case Term::Kind::kFunction:
      for (const Term& a : w.args()) {
        if (OccursIn(var, a, subst)) return true;
      }
      return false;
  }
  return false;
}

}  // namespace

bool UnifyTerms(const Term& a, const Term& b, Substitution* subst) {
  Term x = Walk(a, *subst);
  Term y = Walk(b, *subst);
  if (x.is_variable()) {
    if (y.is_variable() && y.symbol() == x.symbol()) return true;
    if (OccursIn(x.symbol(), y, *subst)) return false;
    subst->Bind(x.symbol(), y);
    return true;
  }
  if (y.is_variable()) {
    if (OccursIn(y.symbol(), x, *subst)) return false;
    subst->Bind(y.symbol(), x);
    return true;
  }
  if (x.is_constant() && y.is_constant()) return x.value() == y.value();
  if (x.is_function() && y.is_function()) {
    if (x.symbol() != y.symbol() || x.args().size() != y.args().size()) {
      return false;
    }
    for (size_t i = 0; i < x.args().size(); ++i) {
      if (!UnifyTerms(x.args()[i], y.args()[i], subst)) return false;
    }
    return true;
  }
  return false;  // constant vs function
}

bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* subst) {
  if (a.predicate != b.predicate || a.args.size() != b.args.size()) {
    return false;
  }
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!UnifyTerms(a.args[i], b.args[i], subst)) return false;
  }
  return true;
}

bool MatchTermAgainstGround(const Term& pattern, const Term& ground,
                            Substitution* subst) {
  switch (pattern.kind()) {
    case Term::Kind::kConstant:
      return ground.is_constant() && pattern.value() == ground.value();
    case Term::Kind::kVariable: {
      std::optional<Term> bound = subst->Lookup(pattern.symbol());
      if (bound.has_value()) return *bound == ground;
      subst->Bind(pattern.symbol(), ground);
      return true;
    }
    case Term::Kind::kFunction: {
      if (!ground.is_function() || ground.symbol() != pattern.symbol() ||
          ground.args().size() != pattern.args().size()) {
        return false;
      }
      for (size_t i = 0; i < pattern.args().size(); ++i) {
        if (!MatchTermAgainstGround(pattern.args()[i], ground.args()[i],
                                    subst)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool MatchAtomAgainstGround(const Atom& pattern,
                            const std::vector<Term>& tuple,
                            Substitution* subst) {
  if (pattern.args.size() != tuple.size()) return false;
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    if (!MatchTermAgainstGround(pattern.args[i], tuple[i], subst)) {
      return false;
    }
  }
  return true;
}

Rule RenameApart(const Rule& rule, Interner* interner) {
  Substitution renaming;
  for (SymbolId v : rule.Variables()) {
    renaming.Bind(v, Term::Var(interner->Fresh("_R")));
  }
  return renaming.Apply(rule);
}

}  // namespace relcont
