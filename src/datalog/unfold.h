#ifndef RELCONT_DATALOG_UNFOLD_H_
#define RELCONT_DATALOG_UNFOLD_H_

#include "common/status.h"
#include "datalog/program.h"

namespace relcont {

/// Options for unfolding nonrecursive programs.
struct UnfoldOptions {
  /// Hard cap on the number of produced disjuncts (the number can be
  /// exponential in program size, e.g. in the Theorem 3.3 reduction).
  int64_t max_disjuncts = 1'000'000;
};

/// Unfolds the nonrecursive `program` into an equivalent union of
/// conjunctive queries for the predicate `goal`: every IDB subgoal is
/// resolved against its defining rules until only EDB subgoals remain.
/// Comparison subgoals are carried along (with the unifier applied).
///
/// Unification-based resolution handles Skolem function terms, so this
/// also unfolds the query plans produced by the inverse-rules algorithm.
/// Fails with kUnsupported on recursive programs.
Result<UnionQuery> UnfoldToUnion(const Program& program, SymbolId goal,
                                 Interner* interner,
                                 const UnfoldOptions& options = {});

}  // namespace relcont

#endif  // RELCONT_DATALOG_UNFOLD_H_
