#ifndef RELCONT_DATALOG_PARSER_H_
#define RELCONT_DATALOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "datalog/program.h"

namespace relcont {

/// Parses datalog text.
///
/// Syntax:
///   q1(CarNo, Review) :- cardesc(CarNo, Model, C, Y),
///                        review(Model, Review, Rating).
///   q3(C, R) :- cardesc(C, M, Col, Y), review(M, R, 10), Y < 1970.
///   fact(1, red).
///
/// * Identifiers starting with an upper-case letter or '_' are variables.
/// * Identifiers starting with a lower-case letter are predicate names,
///   symbolic constants, or Skolem function symbols (when followed by '('
///   in argument position).
/// * Numeric literals may be integers, decimals ("12.5"), or fractions
///   ("25/2"); they live in the dense comparison domain.
/// * 'quoted text' is a symbolic constant.
/// * Comparisons use <, <=, >, >=, =, != and may appear anywhere in a body.
/// * '%' starts a comment that runs to end of line.
/// * A zero-arity head may be written `q()` or just `q`.

/// Parses a single rule (or fact) terminated by '.'.
Result<Rule> ParseRule(std::string_view text, Interner* interner);

/// Parses a whole program: a sequence of rules and facts.
Result<Program> ParseProgram(std::string_view text, Interner* interner);

}  // namespace relcont

#endif  // RELCONT_DATALOG_PARSER_H_
