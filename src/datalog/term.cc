#include "datalog/term.h"
#include <cctype>

namespace relcont {

std::string Value::ToString(const Interner& interner) const {
  if (kind_ == Kind::kNumber) return number_.ToString();
  // Quote symbols that would not re-parse as plain lower-case identifiers
  // ("red" prints bare, "two words" or "Weird" print quoted).
  const std::string& name = interner.NameOf(symbol_);
  bool plain = !name.empty() && name[0] >= 'a' && name[0] <= 'z';
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      plain = false;
      break;
    }
  }
  return plain ? name : "'" + name + "'";
}

Term Term::Function(SymbolId name, std::vector<Term> args) {
  Term t;
  t.kind_ = Kind::kFunction;
  t.symbol_ = name;
  t.args_ = std::make_shared<const std::vector<Term>>(std::move(args));
  return t;
}

bool Term::IsGround() const {
  switch (kind_) {
    case Kind::kVariable:
      return false;
    case Kind::kConstant:
      return true;
    case Kind::kFunction:
      for (const Term& a : *args_) {
        if (!a.IsGround()) return false;
      }
      return true;
  }
  return false;
}

bool Term::ContainsFunction() const {
  return kind_ == Kind::kFunction;
}

bool Term::ContainsVar(SymbolId var) const {
  switch (kind_) {
    case Kind::kVariable:
      return symbol_ == var;
    case Kind::kConstant:
      return false;
    case Kind::kFunction:
      for (const Term& a : *args_) {
        if (a.ContainsVar(var)) return true;
      }
      return false;
  }
  return false;
}

void Term::CollectVars(std::vector<SymbolId>* out) const {
  switch (kind_) {
    case Kind::kVariable:
      out->push_back(symbol_);
      return;
    case Kind::kConstant:
      return;
    case Kind::kFunction:
      for (const Term& a : *args_) a.CollectVars(out);
      return;
  }
}

std::string Term::ToString(const Interner& interner) const {
  switch (kind_) {
    case Kind::kVariable:
      return interner.NameOf(symbol_);
    case Kind::kConstant:
      return value_.ToString(interner);
    case Kind::kFunction: {
      std::string out = interner.NameOf(symbol_);
      out += '(';
      for (size_t i = 0; i < args_->size(); ++i) {
        if (i > 0) out += ", ";
        out += (*args_)[i].ToString(interner);
      }
      out += ')';
      return out;
    }
  }
  return "<invalid>";
}

bool operator==(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Term::Kind::kVariable:
      return a.symbol_ == b.symbol_;
    case Term::Kind::kConstant:
      return a.value_ == b.value_;
    case Term::Kind::kFunction:
      return a.symbol_ == b.symbol_ && *a.args_ == *b.args_;
  }
  return false;
}

bool operator<(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
  switch (a.kind_) {
    case Term::Kind::kVariable:
      return a.symbol_ < b.symbol_;
    case Term::Kind::kConstant:
      return a.value_ < b.value_;
    case Term::Kind::kFunction:
      if (a.symbol_ != b.symbol_) return a.symbol_ < b.symbol_;
      return *a.args_ < *b.args_;
  }
  return false;
}

size_t Term::Hash() const {
  switch (kind_) {
    case Kind::kVariable:
      return static_cast<size_t>(symbol_) * 0x9e3779b97f4a7c15ull + 11;
    case Kind::kConstant:
      return value_.Hash();
    case Kind::kFunction: {
      size_t h = static_cast<size_t>(symbol_) * 0x9e3779b97f4a7c15ull + 29;
      for (const Term& a : *args_) {
        h ^= a.Hash();
        h *= 1099511628211ull;
      }
      return h;
    }
  }
  return 0;
}

}  // namespace relcont
