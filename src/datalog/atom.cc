#include "datalog/atom.h"

namespace relcont {

bool Atom::IsGround() const {
  for (const Term& t : args) {
    if (!t.IsGround()) return false;
  }
  return true;
}

void Atom::CollectVars(std::vector<SymbolId>* out) const {
  for (const Term& t : args) t.CollectVars(out);
}

std::string Atom::ToString(const Interner& interner) const {
  std::string out = interner.NameOf(predicate);
  out += '(';
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString(interner);
  }
  out += ')';
  return out;
}

const char* ComparisonOpToString(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return "=";
    case ComparisonOp::kNe:
      return "!=";
    case ComparisonOp::kLt:
      return "<";
    case ComparisonOp::kLe:
      return "<=";
    case ComparisonOp::kGt:
      return ">";
    case ComparisonOp::kGe:
      return ">=";
  }
  return "?";
}

ComparisonOp FlipComparisonOp(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return ComparisonOp::kEq;
    case ComparisonOp::kNe:
      return ComparisonOp::kNe;
    case ComparisonOp::kLt:
      return ComparisonOp::kGt;
    case ComparisonOp::kLe:
      return ComparisonOp::kGe;
    case ComparisonOp::kGt:
      return ComparisonOp::kLt;
    case ComparisonOp::kGe:
      return ComparisonOp::kLe;
  }
  return op;
}

ComparisonOp NegateComparisonOp(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return ComparisonOp::kNe;
    case ComparisonOp::kNe:
      return ComparisonOp::kEq;
    case ComparisonOp::kLt:
      return ComparisonOp::kGe;
    case ComparisonOp::kLe:
      return ComparisonOp::kGt;
    case ComparisonOp::kGt:
      return ComparisonOp::kLe;
    case ComparisonOp::kGe:
      return ComparisonOp::kLt;
  }
  return op;
}

bool Comparison::IsSemiInterval() const {
  if (op == ComparisonOp::kEq || op == ComparisonOp::kNe) return false;
  bool lhs_var = lhs.is_variable();
  bool rhs_var = rhs.is_variable();
  bool lhs_num = lhs.is_constant() && lhs.value().is_number();
  bool rhs_num = rhs.is_constant() && rhs.value().is_number();
  return (lhs_var && rhs_num) || (lhs_num && rhs_var);
}

bool Comparison::EvaluateGround() const {
  if (!lhs.is_constant() || !rhs.is_constant()) return false;
  const Value& a = lhs.value();
  const Value& b = rhs.value();
  // Symbolic constants support only (in)equality.
  if (a.is_symbol() || b.is_symbol()) {
    if (op == ComparisonOp::kEq) return a == b;
    if (op == ComparisonOp::kNe) return a != b;
    return false;
  }
  const Rational& x = a.number();
  const Rational& y = b.number();
  switch (op) {
    case ComparisonOp::kEq:
      return x == y;
    case ComparisonOp::kNe:
      return x != y;
    case ComparisonOp::kLt:
      return x < y;
    case ComparisonOp::kLe:
      return x <= y;
    case ComparisonOp::kGt:
      return x > y;
    case ComparisonOp::kGe:
      return x >= y;
  }
  return false;
}

void Comparison::CollectVars(std::vector<SymbolId>* out) const {
  lhs.CollectVars(out);
  rhs.CollectVars(out);
}

std::string Comparison::ToString(const Interner& interner) const {
  return lhs.ToString(interner) + " " + ComparisonOpToString(op) + " " +
         rhs.ToString(interner);
}

}  // namespace relcont
