#include "datalog/rule.h"

#include <algorithm>
#include <unordered_set>

namespace relcont {

namespace {

// Appends the distinct elements of `vars` to `out`, preserving order.
void Dedup(const std::vector<SymbolId>& vars, std::vector<SymbolId>* out) {
  std::unordered_set<SymbolId> seen(out->begin(), out->end());
  for (SymbolId v : vars) {
    if (seen.insert(v).second) out->push_back(v);
  }
}

void CollectConstantsFromTerm(const Term& t, std::vector<Value>* out) {
  switch (t.kind()) {
    case Term::Kind::kVariable:
      return;
    case Term::Kind::kConstant:
      out->push_back(t.value());
      return;
    case Term::Kind::kFunction:
      for (const Term& a : t.args()) CollectConstantsFromTerm(a, out);
      return;
  }
}

}  // namespace

std::vector<SymbolId> Rule::Variables() const {
  std::vector<SymbolId> all;
  head.CollectVars(&all);
  for (const Atom& a : body) a.CollectVars(&all);
  for (const Comparison& c : comparisons) c.CollectVars(&all);
  std::vector<SymbolId> out;
  Dedup(all, &out);
  return out;
}

std::vector<SymbolId> Rule::HeadVariables() const {
  std::vector<SymbolId> all;
  head.CollectVars(&all);
  std::vector<SymbolId> out;
  Dedup(all, &out);
  return out;
}

std::vector<SymbolId> Rule::BodyVariables() const {
  std::vector<SymbolId> all;
  for (const Atom& a : body) a.CollectVars(&all);
  std::vector<SymbolId> out;
  Dedup(all, &out);
  return out;
}

std::vector<Value> Rule::Constants() const {
  std::vector<Value> out;
  for (const Term& t : head.args) CollectConstantsFromTerm(t, &out);
  for (const Atom& a : body) {
    for (const Term& t : a.args) CollectConstantsFromTerm(t, &out);
  }
  for (const Comparison& c : comparisons) {
    CollectConstantsFromTerm(c.lhs, &out);
    CollectConstantsFromTerm(c.rhs, &out);
  }
  return out;
}

Status Rule::CheckSafe() const {
  std::vector<SymbolId> body_vars_vec = BodyVariables();
  std::unordered_set<SymbolId> body_vars(body_vars_vec.begin(),
                                         body_vars_vec.end());
  for (SymbolId v : HeadVariables()) {
    if (body_vars.find(v) == body_vars.end()) {
      return Status::Unsafe("head variable does not appear in the body");
    }
  }
  std::vector<SymbolId> cmp_vars;
  for (const Comparison& c : comparisons) c.CollectVars(&cmp_vars);
  for (SymbolId v : cmp_vars) {
    if (body_vars.find(v) == body_vars.end()) {
      return Status::Unsafe(
          "comparison variable does not appear in an ordinary subgoal");
    }
  }
  return Status::OK();
}

std::string Rule::ToString(const Interner& interner) const {
  std::string out = head.ToString(interner);
  if (body.empty() && comparisons.empty()) {
    out += ".";
    return out;
  }
  out += " :- ";
  bool first = true;
  for (const Atom& a : body) {
    if (!first) out += ", ";
    first = false;
    out += a.ToString(interner);
  }
  for (const Comparison& c : comparisons) {
    if (!first) out += ", ";
    first = false;
    out += c.ToString(interner);
  }
  out += ".";
  return out;
}

std::string UnionQuery::ToString(const Interner& interner) const {
  std::string out;
  for (const Rule& r : disjuncts) {
    out += r.ToString(interner);
    out += '\n';
  }
  return out;
}

}  // namespace relcont
