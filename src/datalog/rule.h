#ifndef RELCONT_DATALOG_RULE_H_
#define RELCONT_DATALOG_RULE_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/atom.h"

namespace relcont {

/// A datalog rule `head :- body, comparisons`.
///
/// A conjunctive query is a single rule whose body mentions only EDB
/// predicates; a union of conjunctive queries is a set of rules sharing one
/// head predicate. Rules with empty heads (boolean queries) are modelled by
/// a zero-arity head predicate.
struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::vector<Comparison> comparisons;

  Rule() = default;
  Rule(Atom head_in, std::vector<Atom> body_in,
       std::vector<Comparison> comparisons_in = {})
      : head(std::move(head_in)),
        body(std::move(body_in)),
        comparisons(std::move(comparisons_in)) {}

  /// All distinct variables of the rule, in first-occurrence order
  /// (head first, then body, then comparisons).
  std::vector<SymbolId> Variables() const;
  /// All distinct variables occurring in the head.
  std::vector<SymbolId> HeadVariables() const;
  /// Distinct variables occurring in the body (relational atoms only).
  std::vector<SymbolId> BodyVariables() const;
  /// All constant values occurring anywhere in the rule.
  std::vector<Value> Constants() const;

  /// Checks the safety requirements from Section 2.1: every head variable
  /// appears in a relational body subgoal, and every variable used in a
  /// comparison also appears in a relational body subgoal.
  Status CheckSafe() const;

  /// Renders "h(X) :- p(X, Y), Y < 10." style text.
  std::string ToString(const Interner& interner) const;

  friend bool operator==(const Rule& a, const Rule& b) {
    return a.head == b.head && a.body == b.body &&
           a.comparisons == b.comparisons;
  }
};

/// A union of conjunctive queries (UCQ): disjuncts share the head predicate
/// and arity. The empty UCQ is the unsatisfiable query.
struct UnionQuery {
  std::vector<Rule> disjuncts;

  bool empty() const { return disjuncts.empty(); }
  std::string ToString(const Interner& interner) const;
};

}  // namespace relcont

#endif  // RELCONT_DATALOG_RULE_H_
