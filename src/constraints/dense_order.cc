#include "constraints/dense_order.h"

#include "common/budget.h"
#include "trace/trace.h"

namespace relcont {
namespace constraints {

DenseOrderStats& GlobalDenseOrderStats() {
  static DenseOrderStats stats;
  return stats;
}

DenseOrderMatrix::DenseOrderMatrix(int n)
    : n_(n), cells_(static_cast<size_t>(n) * n, kRelAny) {
  for (int i = 0; i < n; ++i) cell(i, i) = kRelEq;
}

bool DenseOrderMatrix::Restrict(int i, int j, RelSet allowed) {
  RelSet narrowed = static_cast<RelSet>(rel(i, j) & allowed);
  if (narrowed == rel(i, j)) return consistent_;
  cell(i, j) = narrowed;
  cell(j, i) = Invert(narrowed);
  ++propagations_;
  if (!Consistent(narrowed)) {
    consistent_ = false;
    return false;
  }
  pending_.emplace_back(i, j);
  return true;
}

bool DenseOrderMatrix::Close() {
  // Worklist path consistency: every narrowed pair re-checks the
  // triangles it participates in. Each cell shrinks at most 3 times, so
  // the loop pops O(n^2) pairs of O(n) triangles each — polynomial, and
  // therefore run to completion (the budget is charged for accounting
  // only; aborting mid-closure would leave cells wider than derivable
  // and could flip an entailment verdict).
  WorkBudget* budget = CurrentBudget();
  while (!pending_.empty() && consistent_) {
    auto [i, j] = pending_.back();
    pending_.pop_back();
    if (budget != nullptr) budget->Charge(static_cast<uint64_t>(n_));
    RelSet rij = rel(i, j);
    for (int k = 0; k < n_ && consistent_; ++k) {
      if (k == i || k == j) continue;
      // x_i ? x_k through j, and x_k ? x_j through i.
      Restrict(i, k, Compose(rij, rel(j, k)));
      Restrict(k, j, Compose(rel(k, i), rij));
    }
  }
  if (!consistent_) pending_.clear();
  // Flush everything not yet reported — including narrowings applied by
  // Restrict calls between closures (a watermark, not a Close-local
  // delta, so base-constraint restrictions are counted too).
  uint64_t delta = propagations_ - flushed_;
  flushed_ = propagations_;
  if (delta != 0) {
    RELCONT_TRACE_COUNT(kDenseOrderPropagations, delta);
    GlobalDenseOrderStats().propagations.fetch_add(
        delta, std::memory_order_relaxed);
  }
  return consistent_;
}

bool DenseOrderMatrix::Entails(int i, int j, RelSet claim) const {
  if (!consistent_) return true;  // ex falso quodlibet
  RelSet negated = static_cast<RelSet>(kRelAny & ~claim);
  if (negated == kRelNone) return true;  // claim excludes nothing
  if ((rel(i, j) & negated) == kRelNone) return true;  // already closed in
  DenseOrderMatrix refutation = *this;
  refutation.pending_.clear();
  if (!refutation.Restrict(i, j, negated)) return true;
  return !refutation.Close();
}

}  // namespace constraints
}  // namespace relcont
