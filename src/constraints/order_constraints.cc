#include "constraints/order_constraints.h"

#include <algorithm>
#include <string>

#include "common/budget.h"
#include "trace/trace.h"

namespace relcont {

using constraints::DenseOrderMatrix;
using constraints::GlobalDenseOrderStats;
using constraints::RelSet;

namespace {

bool IsNumericConstant(const Term& t) {
  return t.is_constant() && t.value().is_number();
}

bool IsOrderPoint(const Term& t) {
  return t.is_variable() || IsNumericConstant(t);
}

}  // namespace

int OrderConstraints::PointIndex(const Term& t) const {
  auto it = index_.find(t);
  return it == index_.end() ? -1 : it->second;
}

Result<int> OrderConstraints::InternPoint(const Term& t) {
  if (!IsOrderPoint(t)) {
    return Status::InvalidArgument(
        "dense-order points must be variables or numeric constants");
  }
  auto it = index_.find(t);
  if (it != index_.end()) return it->second;
  int id = static_cast<int>(points_.size());
  points_.push_back(t);
  index_.emplace(t, id);
  matrix_.reset();
  // Relate the new constant to every existing constant by value.
  if (IsNumericConstant(t)) {
    for (int j = 0; j < id; ++j) {
      if (!IsNumericConstant(points_[j])) continue;
      const Rational& a = t.value().number();
      const Rational& b = points_[j].value().number();
      if (a < b) {
        AddRaw(id, j, constraints::kRelLt);
      } else if (b < a) {
        AddRaw(j, id, constraints::kRelLt);
      }
      // Equal values map to the identical Term, so a == b cannot happen.
    }
  }
  return id;
}

Status OrderConstraints::AddPoint(const Term& t) {
  return InternPoint(t).status();
}

void OrderConstraints::AddRaw(int i, int j, RelSet allowed) {
  raw_.emplace_back(i, j, allowed);
  matrix_.reset();
}

Status OrderConstraints::Add(const Comparison& c) {
  RELCONT_ASSIGN_OR_RETURN(int l, InternPoint(c.lhs));
  RELCONT_ASSIGN_OR_RETURN(int r, InternPoint(c.rhs));
  switch (c.op) {
    case ComparisonOp::kLt:
      AddRaw(l, r, constraints::kRelLt);
      break;
    case ComparisonOp::kLe:
      AddRaw(l, r, constraints::kRelLe);
      break;
    case ComparisonOp::kGt:
      AddRaw(l, r, constraints::kRelGt);
      break;
    case ComparisonOp::kGe:
      AddRaw(l, r, constraints::kRelGe);
      break;
    case ComparisonOp::kEq:
      AddRaw(l, r, constraints::kRelEq);
      break;
    case ComparisonOp::kNe:
      AddRaw(l, r, constraints::kRelNe);
      break;
  }
  return Status::OK();
}

Status OrderConstraints::AddAll(const std::vector<Comparison>& cs) {
  for (const Comparison& c : cs) {
    RELCONT_RETURN_NOT_OK(Add(c));
  }
  return Status::OK();
}

const DenseOrderMatrix& OrderConstraints::Closed() const {
  if (!matrix_.has_value()) {
    RELCONT_TRACE_COUNT(kClosureRecomputes, 1);
    DenseOrderMatrix m(static_cast<int>(points_.size()));
    for (const auto& [i, j, allowed] : raw_) {
      if (!m.Restrict(i, j, allowed)) break;
    }
    m.Close();
    matrix_.emplace(std::move(m));
  }
  return *matrix_;
}

bool OrderConstraints::IsSatisfiable() const { return Closed().consistent(); }

bool OrderConstraints::Entails(const Comparison& c) const {
  // Trivial and cross-domain cases that do not involve the dense order.
  if (c.lhs == c.rhs) {
    return c.op == ComparisonOp::kEq || c.op == ComparisonOp::kLe ||
           c.op == ComparisonOp::kGe;
  }
  auto is_symbol = [](const Term& t) {
    return t.is_constant() && t.value().is_symbol();
  };
  if (is_symbol(c.lhs) || is_symbol(c.rhs)) {
    if (c.lhs.is_constant() && c.rhs.is_constant()) {
      // Distinct constants (symbol vs symbol, or symbol vs number).
      return c.op == ComparisonOp::kNe;
    }
    return false;  // cannot order symbols against variables
  }
  if (!IsOrderPoint(c.lhs) || !IsOrderPoint(c.rhs)) return false;

  if (!IsSatisfiable()) return true;  // ex falso quodlibet

  // Work on a scratch copy so unseen terms become fresh points (related
  // to existing constants by value when they are constants themselves).
  OrderConstraints scratch = *this;
  Result<int> lr = scratch.InternPoint(c.lhs);
  Result<int> rr = scratch.InternPoint(c.rhs);
  if (!lr.ok() || !rr.ok()) return false;
  RelSet claim = constraints::kRelNone;
  switch (c.op) {
    case ComparisonOp::kLt:
      claim = constraints::kRelLt;
      break;
    case ComparisonOp::kLe:
      claim = constraints::kRelLe;
      break;
    case ComparisonOp::kGt:
      claim = constraints::kRelGt;
      break;
    case ComparisonOp::kGe:
      claim = constraints::kRelGe;
      break;
    case ComparisonOp::kEq:
      claim = constraints::kRelEq;
      break;
    case ComparisonOp::kNe:
      claim = constraints::kRelNe;
      break;
  }
  return scratch.Closed().Entails(*lr, *rr, claim);
}

bool OrderConstraints::EntailsAll(const std::vector<Comparison>& cs) const {
  for (const Comparison& c : cs) {
    if (!Entails(c)) return false;
  }
  return true;
}

Status OrderConstraints::ForEachLinearization(
    const std::function<bool(const Linearization&)>& visit) const {
  int n = static_cast<int>(points_.size());
  if (n == 0) {
    visit(Linearization{});
    return Status::OK();
  }
  const DenseOrderMatrix& m = Closed();
  if (!m.consistent()) return Status::OK();  // nothing to stream

  WorkBudget* budget = CurrentBudget();
  uint64_t nodes = 0;
  uint64_t pruned = 0;
  bool bound = false;
  bool stopped = false;
  Linearization current;
  std::vector<int> remaining(n);
  for (int i = 0; i < n; ++i) remaining[i] = i;

  // DFS over ordered partitions, minimal class first. At each level only
  // the points the closed matrix allows to be minimal are candidates, and
  // only candidate subsets that are pairwise mergeable AND strictly below
  // everything left over are explored — heavily constrained sets visit
  // little beyond their realizable linearizations.
  std::function<void(std::vector<int>&)> recurse = [&](std::vector<int>&
                                                           rem) {
    if (rem.empty()) {
      if (!visit(current)) stopped = true;
      return;
    }
    std::vector<int> cand;
    for (int p : rem) {
      bool can_be_minimal = true;
      for (int r : rem) {
        if (r != p && (m.rel(p, r) & constraints::kRelLe) == 0) {
          can_be_minimal = false;
          break;
        }
      }
      if (can_be_minimal) cand.push_back(p);
    }
    int k = static_cast<int>(cand.size());
    if (k == 0) return;  // dead branch: nothing can come next
    if (k > 63) {  // subset masks no longer fit a word
      bound = true;
      return;
    }
    std::vector<int> cls;
    std::vector<int> rest;
    for (uint64_t mask = 1; mask < (uint64_t{1} << k); ++mask) {
      // One DFS node per candidate class. The exponential part of the
      // search lives here, so this is the budget site; with no budget
      // installed the structural node cap keeps unconstrained point sets
      // from diverging.
      if (budget != nullptr) {
        if (!budget->Charge(1)) {
          bound = true;
          return;
        }
      } else if (++nodes > kDefaultMaxEnumerationNodes) {
        bound = true;
        return;
      }
      cls.clear();
      for (int i = 0; i < k; ++i) {
        if ((mask & (uint64_t{1} << i)) != 0) cls.push_back(cand[i]);
      }
      bool ok = true;
      for (size_t a = 0; a < cls.size() && ok; ++a) {
        for (size_t b = a + 1; b < cls.size() && ok; ++b) {
          if ((m.rel(cls[a], cls[b]) & constraints::kRelEq) == 0) ok = false;
        }
      }
      if (ok) {
        rest.clear();
        for (int r : rem) {
          if (!std::binary_search(cls.begin(), cls.end(), r)) {
            rest.push_back(r);
          }
        }
        for (size_t a = 0; a < cls.size() && ok; ++a) {
          for (int r : rest) {
            if ((m.rel(cls[a], r) & constraints::kRelLt) == 0) {
              ok = false;
              break;
            }
          }
        }
        if (ok) {
          current.push_back(cls);
          std::vector<int> next = rest;  // rest is reused by this level
          recurse(next);
          current.pop_back();
          if (bound || stopped) return;
          continue;
        }
      }
      ++pruned;
    }
  };
  recurse(remaining);

  if (pruned != 0) {
    RELCONT_TRACE_COUNT(kDenseOrderBranchesPruned, pruned);
    GlobalDenseOrderStats().pruned_branches.fetch_add(
        pruned, std::memory_order_relaxed);
  }
  if (bound) {
    GlobalDenseOrderStats().bound_hits.fetch_add(1,
                                                 std::memory_order_relaxed);
    RELCONT_RETURN_NOT_OK(BudgetOkOrBound("linearization_dfs"));
    return BoundReachedAt(
        "linearization_dfs",
        "enumeration exceeded the structural cap of " +
            std::to_string(kDefaultMaxEnumerationNodes) +
            " DFS nodes (install a WorkBudget to govern larger searches)");
  }
  return Status::OK();
}

Result<std::vector<Linearization>> OrderConstraints::EnumerateLinearizations()
    const {
  int n = static_cast<int>(points_.size());
  std::vector<Linearization> out;
  if (n == 0) {
    out.push_back({});
    return out;
  }
  if (TooManyPointsToEnumerate()) {
    return BoundReachedAt(
        "linearization",
        std::to_string(points_.size()) +
            " dense-order points exceed the enumerable cap of " +
            std::to_string(kMaxEnumerablePoints));
  }
  const DenseOrderMatrix& m = Closed();
  if (!m.consistent()) return out;  // unsatisfiable: zero linearizations

  std::vector<int> remaining(n);
  for (int i = 0; i < n; ++i) remaining[i] = i;

  Linearization current;
  // The ORIGINAL unpruned enumerator: subset masks over everything
  // remaining, each checked against the matrix after the fact. Kept
  // verbatim as the independent oracle the pruned DFS is differentially
  // tested against; the budget still applies (the result is incomplete
  // once it trips, hence the status below).
  WorkBudget* budget = CurrentBudget();
  std::function<void(std::vector<int>&)> recurse =
      [&](std::vector<int>& rem) {
        if (rem.empty()) {
          out.push_back(current);
          return;
        }
        int width = static_cast<int>(rem.size());
        for (uint64_t mask = 1; mask < (uint64_t{1} << width); ++mask) {
          if (budget != nullptr && !budget->Charge(1)) return;
          std::vector<int> cls;
          std::vector<int> rest;
          for (int i = 0; i < width; ++i) {
            if ((mask & (uint64_t{1} << i)) != 0) {
              cls.push_back(rem[i]);
            } else {
              rest.push_back(rem[i]);
            }
          }
          // Class members must be mergeable.
          bool ok = true;
          for (size_t a = 0; a < cls.size() && ok; ++a) {
            for (size_t b = a + 1; b < cls.size() && ok; ++b) {
              if ((m.rel(cls[a], cls[b]) & constraints::kRelEq) == 0) {
                ok = false;
              }
            }
          }
          // Nothing left behind may be forced <= a class member.
          for (size_t a = 0; a < cls.size() && ok; ++a) {
            for (int r : rest) {
              if ((m.rel(r, cls[a]) & constraints::kRelGt) == 0) {
                ok = false;
                break;
              }
            }
          }
          if (!ok) continue;
          current.push_back(cls);
          recurse(rest);
          current.pop_back();
        }
      };
  recurse(remaining);
  RELCONT_RETURN_NOT_OK(BudgetOkOrBound("linearization"));
  return out;
}

std::map<Term, Rational> OrderConstraints::Realize(
    const Linearization& lin) const {
  int k = static_cast<int>(lin.size());
  // Anchor classes that contain a numeric constant to that value.
  std::vector<bool> anchored(k, false);
  std::vector<Rational> value(k, Rational(0));
  for (int i = 0; i < k; ++i) {
    for (int p : lin[i]) {
      if (IsNumericConstant(points_[p])) {
        anchored[i] = true;
        value[i] = points_[p].value().number();
      }
    }
  }
  // Fill runs of unanchored classes between anchors.
  int i = 0;
  while (i < k) {
    if (anchored[i]) {
      ++i;
      continue;
    }
    int run_start = i;
    while (i < k && !anchored[i]) ++i;
    int run_end = i;  // exclusive
    bool has_lower = run_start > 0;
    bool has_upper = run_end < k;
    int len = run_end - run_start;
    if (has_lower && has_upper) {
      Rational lo = value[run_start - 1];
      Rational hi = value[run_end];
      Rational width = hi - lo;
      for (int j = 0; j < len; ++j) {
        value[run_start + j] =
            lo + Rational(width.num() * (j + 1), width.den() * (len + 1));
      }
    } else if (has_lower) {
      for (int j = 0; j < len; ++j) {
        value[run_start + j] = value[run_start - 1] + Rational(j + 1);
      }
    } else if (has_upper) {
      for (int j = 0; j < len; ++j) {
        value[run_start + j] = value[run_end] - Rational(len - j);
      }
    } else {
      for (int j = 0; j < len; ++j) value[run_start + j] = Rational(j);
    }
  }
  std::map<Term, Rational> out;
  for (int c = 0; c < k; ++c) {
    for (int p : lin[c]) out[points_[p]] = value[c];
  }
  return out;
}

}  // namespace relcont
