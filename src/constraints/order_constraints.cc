#include "constraints/order_constraints.h"

#include <algorithm>
#include <functional>

#include "common/budget.h"
#include "trace/trace.h"

namespace relcont {

namespace {

bool IsNumericConstant(const Term& t) {
  return t.is_constant() && t.value().is_number();
}

bool IsOrderPoint(const Term& t) {
  return t.is_variable() || IsNumericConstant(t);
}

}  // namespace

int OrderConstraints::PointIndex(const Term& t) const {
  auto it = index_.find(t);
  return it == index_.end() ? -1 : it->second;
}

Result<int> OrderConstraints::InternPoint(const Term& t) {
  if (!IsOrderPoint(t)) {
    return Status::InvalidArgument(
        "dense-order points must be variables or numeric constants");
  }
  auto it = index_.find(t);
  if (it != index_.end()) return it->second;
  int id = static_cast<int>(points_.size());
  points_.push_back(t);
  index_.emplace(t, id);
  closed_ = false;
  // Relate the new constant to every existing constant by value.
  if (IsNumericConstant(t)) {
    for (int j = 0; j < id; ++j) {
      if (!IsNumericConstant(points_[j])) continue;
      const Rational& a = t.value().number();
      const Rational& b = points_[j].value().number();
      if (a < b) {
        AddEdge(id, j, Rel::kLt);
      } else if (b < a) {
        AddEdge(j, id, Rel::kLt);
      }
      // Equal values map to the identical Term, so a == b cannot happen.
    }
  }
  return id;
}

Status OrderConstraints::AddPoint(const Term& t) {
  return InternPoint(t).status();
}

void OrderConstraints::AddEdge(int from, int to, Rel rel) {
  edges_.emplace_back(from, to, rel);
  closed_ = false;
}

void OrderConstraints::AddDistinct(int a, int b) {
  distinct_.emplace_back(a, b);
  closed_ = false;
}

Status OrderConstraints::Add(const Comparison& c) {
  RELCONT_ASSIGN_OR_RETURN(int l, InternPoint(c.lhs));
  RELCONT_ASSIGN_OR_RETURN(int r, InternPoint(c.rhs));
  switch (c.op) {
    case ComparisonOp::kLt:
      AddEdge(l, r, Rel::kLt);
      break;
    case ComparisonOp::kLe:
      AddEdge(l, r, Rel::kLe);
      break;
    case ComparisonOp::kGt:
      AddEdge(r, l, Rel::kLt);
      break;
    case ComparisonOp::kGe:
      AddEdge(r, l, Rel::kLe);
      break;
    case ComparisonOp::kEq:
      AddEdge(l, r, Rel::kLe);
      AddEdge(r, l, Rel::kLe);
      break;
    case ComparisonOp::kNe:
      AddDistinct(l, r);
      break;
  }
  return Status::OK();
}

Status OrderConstraints::AddAll(const std::vector<Comparison>& cs) {
  for (const Comparison& c : cs) {
    RELCONT_RETURN_NOT_OK(Add(c));
  }
  return Status::OK();
}

void OrderConstraints::Close() const {
  if (closed_) return;
  RELCONT_TRACE_COUNT(kClosureRecomputes, 1);
  int n = static_cast<int>(points_.size());
  closure_.assign(static_cast<size_t>(n) * n, Rel::kNone);
  distinct_mat_.assign(static_cast<size_t>(n) * n, 0);
  auto rel = [&](int i, int j) -> Rel& {
    return closure_[static_cast<size_t>(i) * n + j];
  };
  auto dis = [&](int i, int j) -> char& {
    return distinct_mat_[static_cast<size_t>(i) * n + j];
  };
  for (int i = 0; i < n; ++i) rel(i, i) = Rel::kLe;
  for (const auto& [from, to, r] : edges_) {
    rel(from, to) = Stronger(rel(from, to), r);
  }
  for (const auto& [a, b] : distinct_) {
    dis(a, b) = 1;
    dis(b, a) = 1;
  }
  // Fixpoint of: transitive closure, strengthening (x<=y & x!=y => x<y),
  // strictness-induced distinctness, and distinctness through equality.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int k = 0; k < n; ++k) {
      for (int i = 0; i < n; ++i) {
        if (rel(i, k) == Rel::kNone) continue;
        for (int j = 0; j < n; ++j) {
          Rel composed = Compose(rel(i, k), rel(k, j));
          if (composed > rel(i, j)) {
            rel(i, j) = composed;
            changed = true;
          }
        }
      }
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        if (rel(i, j) == Rel::kLt && !dis(i, j)) {
          dis(i, j) = dis(j, i) = 1;
          changed = true;
        }
        if (rel(i, j) == Rel::kLe && dis(i, j)) {
          rel(i, j) = Rel::kLt;
          changed = true;
        }
      }
    }
    // Distinctness propagates across equal points: i == i' and i != j
    // implies i' != j.
    for (int i = 0; i < n; ++i) {
      for (int i2 = 0; i2 < n; ++i2) {
        if (i == i2 || rel(i, i2) == Rel::kNone || rel(i2, i) == Rel::kNone) {
          continue;  // not provably equal
        }
        if (rel(i, i2) == Rel::kLt || rel(i2, i) == Rel::kLt) continue;
        for (int j = 0; j < n; ++j) {
          if (dis(i, j) && !dis(i2, j)) {
            dis(i2, j) = dis(j, i2) = 1;
            changed = true;
          }
        }
      }
    }
  }
  closed_ = true;
}

OrderConstraints::Rel OrderConstraints::ClosedRel(int i, int j) const {
  Close();
  return closure_[static_cast<size_t>(i) * points_.size() + j];
}

bool OrderConstraints::ClosedDistinct(int i, int j) const {
  Close();
  return distinct_mat_[static_cast<size_t>(i) * points_.size() + j] != 0;
}

bool OrderConstraints::IsSatisfiable() const {
  Close();
  int n = static_cast<int>(points_.size());
  for (int i = 0; i < n; ++i) {
    if (ClosedRel(i, i) == Rel::kLt) return false;
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      // Provably equal yet required distinct.
      if (ClosedRel(i, j) == Rel::kLe && ClosedRel(j, i) == Rel::kLe &&
          ClosedDistinct(i, j)) {
        return false;
      }
      // A strict edge inside an equivalence would have strengthened into a
      // strict self-loop via transitivity, caught above.
    }
  }
  return true;
}

bool OrderConstraints::Entails(const Comparison& c) const {
  // Trivial and cross-domain cases that do not involve the dense order.
  if (c.lhs == c.rhs) {
    return c.op == ComparisonOp::kEq || c.op == ComparisonOp::kLe ||
           c.op == ComparisonOp::kGe;
  }
  auto is_symbol = [](const Term& t) {
    return t.is_constant() && t.value().is_symbol();
  };
  if (is_symbol(c.lhs) || is_symbol(c.rhs)) {
    if (c.lhs.is_constant() && c.rhs.is_constant()) {
      // Distinct constants (symbol vs symbol, or symbol vs number).
      return c.op == ComparisonOp::kNe;
    }
    return false;  // cannot order symbols against variables
  }
  if (!IsOrderPoint(c.lhs) || !IsOrderPoint(c.rhs)) return false;

  if (!IsSatisfiable()) return true;  // ex falso quodlibet

  // Work on a scratch copy so unseen terms become fresh points.
  OrderConstraints scratch = *this;
  Result<int> lr = scratch.InternPoint(c.lhs);
  Result<int> rr = scratch.InternPoint(c.rhs);
  if (!lr.ok() || !rr.ok()) return false;
  int l = *lr;
  int r = *rr;
  switch (c.op) {
    case ComparisonOp::kLt:
      return scratch.ClosedRel(l, r) == Rel::kLt;
    case ComparisonOp::kLe:
      return scratch.ClosedRel(l, r) != Rel::kNone;
    case ComparisonOp::kGt:
      return scratch.ClosedRel(r, l) == Rel::kLt;
    case ComparisonOp::kGe:
      return scratch.ClosedRel(r, l) != Rel::kNone;
    case ComparisonOp::kEq:
      return scratch.ClosedRel(l, r) == Rel::kLe &&
             scratch.ClosedRel(r, l) == Rel::kLe;
    case ComparisonOp::kNe:
      return scratch.ClosedDistinct(l, r);
  }
  return false;
}

bool OrderConstraints::EntailsAll(const std::vector<Comparison>& cs) const {
  for (const Comparison& c : cs) {
    if (!Entails(c)) return false;
  }
  return true;
}

bool OrderConstraints::LinearizationSatisfies(const Linearization& lin) const {
  int n = static_cast<int>(points_.size());
  std::vector<int> cls(n, -1);
  for (size_t k = 0; k < lin.size(); ++k) {
    for (int p : lin[k]) cls[p] = static_cast<int>(k);
  }
  for (const auto& [from, to, r] : edges_) {
    if (r == Rel::kLt && !(cls[from] < cls[to])) return false;
    if (r == Rel::kLe && !(cls[from] <= cls[to])) return false;
  }
  for (const auto& [a, b] : distinct_) {
    if (cls[a] == cls[b]) return false;
  }
  return true;
}

std::vector<Linearization> OrderConstraints::EnumerateLinearizations() const {
  Close();
  int n = static_cast<int>(points_.size());
  std::vector<Linearization> out;
  if (n == 0) {
    out.push_back({});
    return out;
  }
  if (TooManyPointsToEnumerate()) return out;
  if (!IsSatisfiable()) return out;

  std::vector<int> remaining(n);
  for (int i = 0; i < n; ++i) remaining[i] = i;

  Linearization current;
  // The ordered-Bell explosion lives here, so this loop carries the budget:
  // one step per candidate subset mask. When the budget trips the
  // enumeration stops early and the result is INCOMPLETE — callers must
  // probe the budget (BudgetOkOrBound) before treating the list as
  // exhaustive.
  WorkBudget* budget = CurrentBudget();
  // Chooses the next minimal class from `remaining` and recurses.
  // Subset enumeration by bitmask over the remaining points (|remaining|
  // is at most the point count; practical queries stay small).
  std::function<void(std::vector<int>&)> recurse =
      [&](std::vector<int>& rem) {
        if (rem.empty()) {
          out.push_back(current);
          return;
        }
        int m = static_cast<int>(rem.size());
        for (uint64_t mask = 1; mask < (uint64_t{1} << m); ++mask) {
          if (budget != nullptr && !budget->Charge(1)) return;
          std::vector<int> cls;
          std::vector<int> rest;
          for (int i = 0; i < m; ++i) {
            if (mask & (uint64_t{1} << i)) {
              cls.push_back(rem[i]);
            } else {
              rest.push_back(rem[i]);
            }
          }
          // Class members must be mergeable (no strict order, no
          // distinctness between them).
          bool ok = true;
          for (size_t a = 0; a < cls.size() && ok; ++a) {
            for (size_t b = a + 1; b < cls.size() && ok; ++b) {
              if (ClosedRel(cls[a], cls[b]) == Rel::kLt ||
                  ClosedRel(cls[b], cls[a]) == Rel::kLt ||
                  ClosedDistinct(cls[a], cls[b])) {
                ok = false;
              }
            }
          }
          // Nothing left behind may be <= a class member.
          for (size_t a = 0; a < cls.size() && ok; ++a) {
            for (int r : rest) {
              if (ClosedRel(r, cls[a]) != Rel::kNone) {
                ok = false;
                break;
              }
            }
          }
          if (!ok) continue;
          current.push_back(cls);
          recurse(rest);
          current.pop_back();
        }
      };
  recurse(remaining);
  return out;
}

std::map<Term, Rational> OrderConstraints::Realize(
    const Linearization& lin) const {
  int k = static_cast<int>(lin.size());
  // Anchor classes that contain a numeric constant to that value.
  std::vector<bool> anchored(k, false);
  std::vector<Rational> value(k, Rational(0));
  for (int i = 0; i < k; ++i) {
    for (int p : lin[i]) {
      if (IsNumericConstant(points_[p])) {
        anchored[i] = true;
        value[i] = points_[p].value().number();
      }
    }
  }
  // Fill runs of unanchored classes between anchors.
  int i = 0;
  while (i < k) {
    if (anchored[i]) {
      ++i;
      continue;
    }
    int run_start = i;
    while (i < k && !anchored[i]) ++i;
    int run_end = i;  // exclusive
    bool has_lower = run_start > 0;
    bool has_upper = run_end < k;
    int len = run_end - run_start;
    if (has_lower && has_upper) {
      Rational lo = value[run_start - 1];
      Rational hi = value[run_end];
      Rational width = hi - lo;
      for (int j = 0; j < len; ++j) {
        value[run_start + j] =
            lo + Rational(width.num() * (j + 1), width.den() * (len + 1));
      }
    } else if (has_lower) {
      for (int j = 0; j < len; ++j) {
        value[run_start + j] = value[run_start - 1] + Rational(j + 1);
      }
    } else if (has_upper) {
      for (int j = 0; j < len; ++j) {
        value[run_start + j] = value[run_end] - Rational(len - j);
      }
    } else {
      for (int j = 0; j < len; ++j) value[run_start + j] = Rational(j);
    }
  }
  std::map<Term, Rational> out;
  for (int c = 0; c < k; ++c) {
    for (int p : lin[c]) out[points_[p]] = value[c];
  }
  return out;
}

}  // namespace relcont
