#ifndef RELCONT_CONSTRAINTS_ORDER_CONSTRAINTS_H_
#define RELCONT_CONSTRAINTS_ORDER_CONSTRAINTS_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "datalog/atom.h"

namespace relcont {

/// A total preorder over a finite point set, represented as an ordered
/// partition: classes[0] < classes[1] < ... with equality inside a class.
/// Entries are indices into the owning OrderConstraints' point list.
using Linearization = std::vector<std::vector<int>>;

/// A conjunction of comparison atoms over a dense linear order (Section 5
/// of the paper; we use the rationals).
///
/// Points are variables and numeric constants. Distinct numeric constants
/// are implicitly ordered by their values. Symbolic constants are not part
/// of the dense domain and are rejected; callers resolve =/!= on symbols
/// before invoking the solver.
///
/// Supports satisfiability, entailment, and enumeration of all consistent
/// linearizations — the machinery behind the complete containment test for
/// conjunctive queries with comparison predicates (Klug; van der Meyden).
class OrderConstraints {
 public:
  OrderConstraints() = default;

  /// Registers a point (variable or numeric constant) without constraining
  /// it. Idempotent. Fails on symbolic constants and function terms.
  Status AddPoint(const Term& t);

  /// Adds `lhs op rhs`; both sides must be variables or numeric constants
  /// (they are registered as points automatically).
  Status Add(const Comparison& c);
  /// Adds every comparison in `cs`.
  Status AddAll(const std::vector<Comparison>& cs);

  /// True iff some assignment of rationals to the variables satisfies all
  /// constraints (constants keeping their actual values).
  bool IsSatisfiable() const;

  /// True iff every satisfying assignment also satisfies `c`. Terms of `c`
  /// that are not registered points are treated as unconstrained (so only
  /// trivial facts about them are entailed). Returns false if `c` mentions
  /// a symbolic constant or if this constraint set is unsatisfiable... an
  /// unsatisfiable set entails everything, so that case returns true.
  bool Entails(const Comparison& c) const;
  bool EntailsAll(const std::vector<Comparison>& cs) const;

  /// The largest point set EnumerateLinearizations will attempt (ordered
  /// Bell numbers explode: 13 points already exceed 5·10^12 weak orders).
  static constexpr int kMaxEnumerablePoints = 12;

  /// True when the registered point set is too large to enumerate; callers
  /// should surface kBoundReached instead of calling
  /// EnumerateLinearizations.
  bool TooManyPointsToEnumerate() const {
    return static_cast<int>(points_.size()) > kMaxEnumerablePoints;
  }

  /// Enumerates every linearization (total preorder) of the registered
  /// points that (a) satisfies all added constraints and (b) orders numeric
  /// constants by value with distinct constants in distinct classes.
  /// The count is bounded by the ordered Bell number of the point count —
  /// exponential, as the Π₂ᴾ bounds predict. Returns an empty vector when
  /// TooManyPointsToEnumerate() (check it first to distinguish from
  /// unsatisfiable constraints).
  std::vector<Linearization> EnumerateLinearizations() const;

  /// Assigns a concrete rational to every point of `lin`, consistent with
  /// the class order and with the actual values of constant points.
  /// Requires `lin` to be one of the linearizations this instance generated
  /// (constants in value order, one constant value per class).
  std::map<Term, Rational> Realize(const Linearization& lin) const;

  /// The registered points in registration order.
  const std::vector<Term>& points() const { return points_; }
  /// Index of `t` in points(), or -1.
  int PointIndex(const Term& t) const;

 private:
  // Strongest derived relation from point i to point j.
  enum class Rel : uint8_t { kNone = 0, kLe = 1, kLt = 2 };

  static Rel Compose(Rel a, Rel b) {
    if (a == Rel::kNone || b == Rel::kNone) return Rel::kNone;
    return (a == Rel::kLt || b == Rel::kLt) ? Rel::kLt : Rel::kLe;
  }
  static Rel Stronger(Rel a, Rel b) { return a > b ? a : b; }

  Result<int> InternPoint(const Term& t);
  void AddEdge(int from, int to, Rel rel);
  void AddDistinct(int a, int b);
  // Recomputes the transitive closure; called lazily.
  void Close() const;
  Rel ClosedRel(int i, int j) const;
  bool ClosedDistinct(int i, int j) const;
  // True iff the linearization satisfies every added raw constraint.
  bool LinearizationSatisfies(const Linearization& lin) const;

  std::vector<Term> points_;
  std::map<Term, int> index_;
  // Raw constraints as (i, Rel, j) edges plus a distinctness set.
  std::vector<std::tuple<int, int, Rel>> edges_;
  std::vector<std::pair<int, int>> distinct_;

  // Lazily computed closure.
  mutable bool closed_ = false;
  mutable std::vector<Rel> closure_;        // n*n matrix
  mutable std::vector<char> distinct_mat_;  // n*n matrix
};

}  // namespace relcont

#endif  // RELCONT_CONSTRAINTS_ORDER_CONSTRAINTS_H_
