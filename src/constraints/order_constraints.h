#ifndef RELCONT_CONSTRAINTS_ORDER_CONSTRAINTS_H_
#define RELCONT_CONSTRAINTS_ORDER_CONSTRAINTS_H_

#include <functional>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "constraints/dense_order.h"
#include "datalog/atom.h"

namespace relcont {

/// A total preorder over a finite point set, represented as an ordered
/// partition: classes[0] < classes[1] < ... with equality inside a class.
/// Entries are indices into the owning OrderConstraints' point list.
using Linearization = std::vector<std::vector<int>>;

/// A conjunction of comparison atoms over a dense linear order (Section 5
/// of the paper; we use the rationals).
///
/// Points are variables and numeric constants. Distinct numeric constants
/// are implicitly ordered by their values. Symbolic constants are not part
/// of the dense domain and are rejected; callers resolve =/!= on symbols
/// before invoking the solver.
///
/// Satisfiability and entailment are decided by the bitset pair-matrix
/// engine (constraints/dense_order.h): polynomial closure, no enumeration,
/// no cap on the point count. The linearization surface — needed by the
/// complete containment test for CQs with comparisons (Klug; van der
/// Meyden) — is streamed by ForEachLinearization, a DFS over the closed
/// matrix that only explores class placements the matrix allows.
class OrderConstraints {
 public:
  OrderConstraints() = default;

  /// Registers a point (variable or numeric constant) without constraining
  /// it. Idempotent. Fails on symbolic constants and function terms.
  Status AddPoint(const Term& t);

  /// Adds `lhs op rhs`; both sides must be variables or numeric constants
  /// (they are registered as points automatically).
  Status Add(const Comparison& c);
  /// Adds every comparison in `cs`.
  Status AddAll(const std::vector<Comparison>& cs);

  /// True iff some assignment of rationals to the variables satisfies all
  /// constraints (constants keeping their actual values). Decided by
  /// matrix closure — polynomial in the point count, never bounded.
  bool IsSatisfiable() const;

  /// True iff every satisfying assignment also satisfies `c`. Terms of `c`
  /// that are not registered points are treated as unconstrained (so only
  /// trivial facts about them are entailed). Returns false if `c` mentions
  /// a symbolic constant or if this constraint set is unsatisfiable... an
  /// unsatisfiable set entails everything, so that case returns true.
  /// Decided by refutation on the pair matrix — polynomial, never bounded.
  bool Entails(const Comparison& c) const;
  bool EntailsAll(const std::vector<Comparison>& cs) const;

  /// Streams every linearization (total preorder) of the registered points
  /// that (a) satisfies all added constraints and (b) orders numeric
  /// constants by value with distinct constants in distinct classes, in a
  /// pruned DFS: a class of minimal points is only explored when the
  /// closed pair matrix allows the placement, so heavily constrained sets
  /// cost little more than their realizable linearizations. Stops early
  /// when `visit` returns false (still OK — the visitor saw what it
  /// needed). Returns kBoundReached when the current WorkBudget trips, or
  /// — with no budget installed — when the structural node cap
  /// kDefaultMaxEnumerationNodes is hit; either way the visited prefix is
  /// incomplete and "held for every linearization" claims are unsound.
  Status ForEachLinearization(
      const std::function<bool(const Linearization&)>& visit) const;

  /// DFS nodes (candidate class placements) the enumeration will explore
  /// before giving up when no WorkBudget is installed. An installed
  /// budget replaces this cap entirely.
  static constexpr uint64_t kDefaultMaxEnumerationNodes = 1u << 20;

  /// The largest point set EnumerateLinearizations will attempt (ordered
  /// Bell numbers explode: 13 points already exceed 5·10^12 weak orders).
  /// Applies only to the materializing oracle below, not to the streaming
  /// DFS, the satisfiability check, or entailment.
  static constexpr int kMaxEnumerablePoints = 12;

  /// True when the registered point set is too large for the materializing
  /// oracle; EnumerateLinearizations returns kBoundReached in that case.
  bool TooManyPointsToEnumerate() const {
    return static_cast<int>(points_.size()) > kMaxEnumerablePoints;
  }

  /// Materializes every linearization via the ORIGINAL unpruned
  /// subset-enumeration algorithm. Kept as the independent test oracle
  /// for ForEachLinearization (tests/dense_order_differential_test.cc);
  /// production callers use the streaming DFS. Returns kBoundReached
  /// over the kMaxEnumerablePoints cap or when the budget trips, and an
  /// empty vector (OK) for unsatisfiable constraints — the two cases are
  /// no longer conflated.
  Result<std::vector<Linearization>> EnumerateLinearizations() const;

  /// Assigns a concrete rational to every point of `lin`, consistent with
  /// the class order and with the actual values of constant points.
  /// Requires `lin` to be one of the linearizations this instance
  /// generated (constants in value order, one constant value per class).
  std::map<Term, Rational> Realize(const Linearization& lin) const;

  /// The registered points in registration order.
  const std::vector<Term>& points() const { return points_; }
  /// Index of `t` in points(), or -1.
  int PointIndex(const Term& t) const;

 private:
  Result<int> InternPoint(const Term& t);
  void AddRaw(int i, int j, constraints::RelSet allowed);
  // Builds and closes the pair matrix from the raw constraints (lazily;
  // any Add invalidates the cache).
  const constraints::DenseOrderMatrix& Closed() const;

  std::vector<Term> points_;
  std::map<Term, int> index_;
  // Raw constraints as (i, j, allowed-relation-set) triples.
  std::vector<std::tuple<int, int, constraints::RelSet>> raw_;

  // Lazily computed closed matrix.
  mutable std::optional<constraints::DenseOrderMatrix> matrix_;
};

}  // namespace relcont

#endif  // RELCONT_CONSTRAINTS_ORDER_CONSTRAINTS_H_
