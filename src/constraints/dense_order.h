#ifndef RELCONT_CONSTRAINTS_DENSE_ORDER_H_
#define RELCONT_CONSTRAINTS_DENSE_ORDER_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

/// relcont::constraints — the bitset dense-order engine (see
/// docs/ALGORITHMS.md, "Dense-order solver").
///
/// The relation between two points of a dense linear order is one of the
/// three primitives {<, =, >}. A constraint is a SET of still-possible
/// primitives, packed into the low three bits of a byte: `x <= y` is
/// {<,=}, `x != y` is {<,>}, "unconstrained" is all three, and the empty
/// set marks an unsatisfiable cell. Composition ("what does x?y and y?z
/// allow for x?z") distributes over set union, so the full 8x8 table is
/// built at compile time from the 3x3 primitive table.
///
/// A DenseOrderMatrix holds the n×n cells (with rel(j,i) always the
/// mirror of rel(i,j)) and closes them by path-consistency propagation:
/// a worklist of narrowed pairs, each popped pair narrowing every
/// triangle it participates in. The closure is polynomial — O(n^3)
/// narrowings, each cell can only shrink 7 -> 0 — and decides
/// satisfiability outright (an emptied cell is the only failure mode).
/// Entailment is decided by REFUTATION: intersect the queried cell with
/// the claim's complement and re-close; the claim is entailed iff the
/// refutation closes to unsatisfiable. (Plain closure is not enough:
/// path consistency leaves non-minimal cells in the presence of `!=`,
/// e.g. {w<=x, w<=y, x<=z, y<=z, x!=y} forces w<z but no single triangle
/// derives it. The refutation network IS inconsistent, and path
/// consistency decides consistency.)
namespace relcont {
namespace constraints {

/// A set of still-possible primitive order relations, one bit each.
using RelSet = uint8_t;

inline constexpr RelSet kRelNone = 0;  ///< empty set: unsatisfiable cell
inline constexpr RelSet kRelLt = 1;
inline constexpr RelSet kRelEq = 2;
inline constexpr RelSet kRelGt = 4;
inline constexpr RelSet kRelLe = kRelLt | kRelEq;
inline constexpr RelSet kRelGe = kRelGt | kRelEq;
inline constexpr RelSet kRelNe = kRelLt | kRelGt;
inline constexpr RelSet kRelAny = kRelLt | kRelEq | kRelGt;

/// The converse relation set: rel(j,i) given rel(i,j) (swap < and >).
constexpr RelSet Invert(RelSet r) {
  return static_cast<RelSet>(((r & kRelLt) != 0 ? kRelGt : 0) |
                             (r & kRelEq) |
                             ((r & kRelGt) != 0 ? kRelLt : 0));
}

/// Composition of two PRIMITIVE relations: the possible x?z given x a y
/// and y b z. `=` is the identity; `<` chains with `<`; opposite strict
/// relations say nothing (the order is dense and unbounded).
constexpr RelSet ComposePrimitive(RelSet a, RelSet b) {
  return a == kRelEq ? b
         : b == kRelEq ? a
         : a == b ? a
                  : kRelAny;
}

namespace internal {

/// The full 8x8 composition table, folded over the primitive table at
/// compile time (composition distributes over union).
struct ComposeTable {
  RelSet cell[8][8];
  constexpr ComposeTable() : cell{} {
    for (int a = 0; a < 8; ++a) {
      for (int b = 0; b < 8; ++b) {
        RelSet out = kRelNone;
        for (RelSet pa = 1; pa < 8; pa = static_cast<RelSet>(pa << 1)) {
          for (RelSet pb = 1; pb < 8; pb = static_cast<RelSet>(pb << 1)) {
            if ((a & pa) != 0 && (b & pb) != 0) {
              out = static_cast<RelSet>(out | ComposePrimitive(pa, pb));
            }
          }
        }
        cell[a][b] = out;
      }
    }
  }
};

inline constexpr ComposeTable kComposeTable{};

}  // namespace internal

/// Set-level composition: the union of pairwise primitive compositions.
constexpr RelSet Compose(RelSet a, RelSet b) {
  return internal::kComposeTable.cell[a][b];
}

/// A cell is consistent while at least one primitive survives.
constexpr bool Consistent(RelSet r) { return r != kRelNone; }

/// Process-wide counters for the engine, mirrored into METRICS and
/// `/metrics` (docs/OBSERVABILITY.md). Monotone; relaxed ordering.
struct DenseOrderStats {
  /// Cell narrowings applied during closure (a pair actually shrank).
  std::atomic<uint64_t> propagations{0};
  /// Candidate class placements rejected by the closed matrix during
  /// linearization DFS.
  std::atomic<uint64_t> pruned_branches{0};
  /// Linearization enumerations aborted by a budget or the structural
  /// node cap (closure itself never aborts).
  std::atomic<uint64_t> bound_hits{0};
};

DenseOrderStats& GlobalDenseOrderStats();

/// The n×n pair matrix. Cells start at kRelAny (diagonal kRelEq) and only
/// ever shrink; the mirror invariant rel(j,i) == Invert(rel(i,j)) holds
/// at all times. Copyable: Entails works on a throwaway copy.
class DenseOrderMatrix {
 public:
  explicit DenseOrderMatrix(int n);

  int size() const { return n_; }
  RelSet rel(int i, int j) const {
    return cells_[static_cast<size_t>(i) * n_ + j];
  }

  /// Intersects rel(i,j) with `allowed` (mirroring into rel(j,i)) and
  /// queues the pair for propagation. Returns false once any cell is
  /// empty — the matrix is then permanently inconsistent.
  bool Restrict(int i, int j, RelSet allowed);

  /// Propagates queued restrictions to the path-consistent fixpoint.
  /// Polynomial and always run to completion — a truncated closure could
  /// corrupt verdicts — but charges the current WorkBudget for
  /// accounting, so closure work counts against deadlines. Returns
  /// consistent().
  bool Close();

  /// False once any cell emptied. Only meaningful after Close().
  bool consistent() const { return consistent_; }

  /// True iff rel(i,j) ⊆ `claim` holds in every solution: refutation on
  /// a copy (intersect with the complement, re-close, entailed iff the
  /// copy is inconsistent). Requires a closed, consistent matrix.
  bool Entails(int i, int j, RelSet claim) const;

  /// Cell narrowings this matrix has performed (for trace counters).
  uint64_t propagations() const { return propagations_; }

 private:
  RelSet& cell(int i, int j) {
    return cells_[static_cast<size_t>(i) * n_ + j];
  }

  int n_ = 0;
  bool consistent_ = true;
  uint64_t propagations_ = 0;
  // Watermark of propagations_ already flushed to the trace counter and
  // the global stats (advanced by Close()).
  uint64_t flushed_ = 0;
  std::vector<RelSet> cells_;
  std::vector<std::pair<int, int>> pending_;
};

}  // namespace constraints
}  // namespace relcont

#endif  // RELCONT_CONSTRAINTS_DENSE_ORDER_H_
