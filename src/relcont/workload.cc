#include "relcont/workload.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <string>

namespace relcont {

namespace {

Term RandomTerm(std::mt19937_64* rng, const RandomQueryOptions& options,
                Interner* interner) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(*rng) < options.constant_probability) {
    std::uniform_int_distribution<int> c(0, 2);
    return Term::Number(Rational(c(*rng)));
  }
  std::uniform_int_distribution<int> v(0, options.num_variables - 1);
  return Term::Var(interner->Intern("V" + std::to_string(v(*rng))));
}

}  // namespace

Rule RandomConjunctiveQuery(const RandomQueryOptions& options,
                            std::string_view head_name, Interner* interner) {
  std::mt19937_64 rng(options.seed);
  Rule rule;
  std::uniform_int_distribution<int> pred(0, options.num_predicates - 1);
  for (int i = 0; i < options.num_atoms; ++i) {
    Atom atom;
    atom.predicate = interner->Intern("p" + std::to_string(pred(rng)));
    for (int j = 0; j < options.arity; ++j) {
      atom.args.push_back(RandomTerm(&rng, options, interner));
    }
    rule.body.push_back(std::move(atom));
  }
  // Head variables drawn from the body (safety).
  std::vector<SymbolId> body_vars = rule.BodyVariables();
  rule.head.predicate = interner->Intern(std::string(head_name));
  if (!body_vars.empty()) {
    std::uniform_int_distribution<size_t> pick(0, body_vars.size() - 1);
    for (int i = 0; i < options.head_arity; ++i) {
      rule.head.args.push_back(Term::Var(body_vars[pick(rng)]));
    }
  }
  return rule;
}

Rule ChainQuery(int length, std::string_view head_name,
                std::string_view edge_name, Interner* interner) {
  Rule rule;
  SymbolId edge = interner->Intern(std::string(edge_name));
  auto var = [&](int i) {
    return Term::Var(interner->Intern("C" + std::to_string(i)));
  };
  for (int i = 0; i < length; ++i) {
    rule.body.emplace_back(edge, std::vector<Term>{var(i), var(i + 1)});
  }
  rule.head = Atom(interner->Intern(std::string(head_name)),
                   {var(0), var(length)});
  return rule;
}

Rule StarQuery(int rays, std::string_view head_name,
               std::string_view edge_name, Interner* interner) {
  Rule rule;
  SymbolId edge = interner->Intern(std::string(edge_name));
  Term center = Term::Var(interner->Intern("Center"));
  for (int i = 0; i < rays; ++i) {
    rule.body.emplace_back(
        edge, std::vector<Term>{
                  center, Term::Var(interner->Intern(
                              "R" + std::to_string(i)))});
  }
  rule.head = Atom(interner->Intern(std::string(head_name)), {center});
  return rule;
}

ViewSet RandomViews(const RandomQueryOptions& options, int num_views,
                    Interner* interner) {
  std::mt19937_64 rng(options.seed * 7919 + 13);
  ViewSet out;
  std::uniform_int_distribution<int> pred(0, options.num_predicates - 1);
  std::uniform_int_distribution<int> body_atoms(1, 2);
  for (int i = 0; i < num_views; ++i) {
    Rule rule;
    int atoms = body_atoms(rng);
    for (int a = 0; a < atoms; ++a) {
      Atom atom;
      atom.predicate = interner->Intern("p" + std::to_string(pred(rng)));
      for (int j = 0; j < options.arity; ++j) {
        atom.args.push_back(RandomTerm(&rng, options, interner));
      }
      rule.body.push_back(std::move(atom));
    }
    std::vector<SymbolId> vars = rule.BodyVariables();
    if (vars.empty()) continue;  // all-constant body; uninteresting
    // Project a random nonempty subset of the variables.
    std::vector<SymbolId> head_vars;
    for (SymbolId v : vars) {
      std::uniform_int_distribution<int> keep(0, 1);
      if (keep(rng) == 1) head_vars.push_back(v);
    }
    if (head_vars.empty()) head_vars.push_back(vars[0]);
    rule.head.predicate = interner->Intern("view" + std::to_string(i));
    for (SymbolId v : head_vars) rule.head.args.push_back(Term::Var(v));
    ViewDefinition def;
    def.rule = std::move(rule);
    // Adding can only fail on duplicates, which the naming prevents.
    Status st = out.Add(std::move(def));
    (void)st;
  }
  return out;
}

Database RandomInstance(const ViewSet& views, int num_facts, int domain_size,
                        uint64_t seed, Interner* interner) {
  std::mt19937_64 rng(seed);
  Database out;
  if (views.empty()) return out;
  std::uniform_int_distribution<size_t> which(0, views.size() - 1);
  std::uniform_int_distribution<int> value(0, domain_size - 1);
  for (int i = 0; i < num_facts; ++i) {
    const ViewDefinition& view = views.views()[which(rng)];
    Tuple tuple;
    for (int j = 0; j < view.rule.head.arity(); ++j) {
      tuple.push_back(Term::Symbol(
          interner->Intern("d" + std::to_string(value(rng)))));
    }
    out.Add(view.source_predicate(), std::move(tuple));
  }
  return out;
}

Database RandomGraph(std::string_view edge_name, int num_nodes, int num_edges,
                     uint64_t seed, Interner* interner) {
  std::mt19937_64 rng(seed);
  Database out;
  SymbolId edge = interner->Intern(std::string(edge_name));
  std::uniform_int_distribution<int> node(0, num_nodes - 1);
  for (int i = 0; i < num_edges; ++i) {
    Tuple tuple{
        Term::Symbol(interner->Intern("n" + std::to_string(node(rng)))),
        Term::Symbol(interner->Intern("n" + std::to_string(node(rng))))};
    out.Add(edge, std::move(tuple));
  }
  return out;
}

namespace {

/// Draws a relation index in [0, num_relations) with weight (r+1)^-skew.
/// Inverse-CDF over precomputed cumulative weights, so the draw sequence
/// is a pure function of the rng stream.
class SkewedRelationPicker {
 public:
  SkewedRelationPicker(int num_relations, double skew) {
    double total = 0;
    cumulative_.reserve(num_relations);
    for (int r = 0; r < num_relations; ++r) {
      total += std::pow(static_cast<double>(r + 1), -skew);
      cumulative_.push_back(total);
    }
  }

  int Pick(std::mt19937_64* rng) const {
    std::uniform_real_distribution<double> u(0.0, cumulative_.back());
    double x = u(*rng);
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), x);
    return static_cast<int>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

/// Renders "name(X0, XL) :- e_a(X0, X1), ..., e_b(X(L-1), XL)." with the
/// relation of each hop drawn from `pick`.
std::string RenderChainRule(const std::string& head_name, int length,
                            const SkewedRelationPicker& pick,
                            std::mt19937_64* rng) {
  std::string out = head_name + "(X0, X" + std::to_string(length) + ") :- ";
  for (int hop = 0; hop < length; ++hop) {
    if (hop > 0) out += ", ";
    out += "e" + std::to_string(pick.Pick(rng)) + "(X" +
           std::to_string(hop) + ", X" + std::to_string(hop + 1) + ")";
  }
  out += ".";
  return out;
}

}  // namespace

PathViewWorkload MakePathViewWorkload(const PathViewOptions& options) {
  std::mt19937_64 rng(options.seed);
  PathViewWorkload out;
  SkewedRelationPicker pick(std::max(1, options.num_relations),
                            options.skew);
  int min_length = std::max(1, options.min_length);
  int max_length = std::max(min_length, options.max_length);
  std::uniform_int_distribution<int> length(min_length, max_length);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int i = 0; i < options.num_views; ++i) {
    std::string name = "v" + std::to_string(i);
    out.views_text += RenderChainRule(name, length(rng), pick, &rng);
    out.views_text += '\n';
    if (coin(rng) < options.bound_probability) {
      out.patterns.emplace_back(std::move(name), "bf");
    }
  }
  out.query_text =
      RenderChainRule("q", std::max(1, options.query_length), pick, &rng);
  return out;
}

}  // namespace relcont
