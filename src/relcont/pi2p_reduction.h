#ifndef RELCONT_RELCONT_PI2P_REDUCTION_H_
#define RELCONT_RELCONT_PI2P_REDUCTION_H_

#include <cstdint>

#include "relcont/relative_containment.h"

namespace relcont {

/// The ∀∃-3CNF ("∀∃-CNF") problem and its reduction to relative
/// containment — the Theorem 3.3 lower-bound construction, reproduced here
/// both as a correctness test bed (the decision procedure must agree with
/// brute-force ∀∃ evaluation) and as the hard-instance workload generator
/// for the complexity-shape benchmarks.

/// A literal over the formula's variables. Existential variables have
/// indices 0..num_exists-1; universal variables num_exists..num_exists +
/// num_forall - 1.
struct QbfLiteral {
  int variable = 0;
  bool negated = false;
};

/// A 3-literal clause; the three variables must be pairwise distinct.
struct QbfClause {
  QbfLiteral literals[3];
};

/// A formula  ∀y ∃x  F(x, y)  with F in 3-CNF.
struct QbfFormula {
  int num_exists = 0;
  int num_forall = 0;
  std::vector<QbfClause> clauses;

  int num_variables() const { return num_exists + num_forall; }
};

/// Brute-force evaluation of  ∀y ∃x F  (exponential; used as the oracle).
bool ForallExistsSatisfiable(const QbfFormula& formula);

/// Brute-force plain satisfiability of F (all variables existential).
bool Satisfiable(const QbfFormula& formula);

/// The Theorem 3.3 instance: F is ∀∃-satisfiable  ⇔  q2 ⊑_V q1, and
/// (Aho–Sagiv–Ullman) F is satisfiable  ⇔  rule(q2) ⊑ rule(q1) classically.
struct Pi2pInstance {
  GoalQuery q1;
  GoalQuery q2;
  ViewSet views;
};

/// Builds the reduction. Fails if a clause repeats a variable or the
/// formula is empty.
Result<Pi2pInstance> BuildPi2pReduction(const QbfFormula& formula,
                                        Interner* interner);

/// A reproducible random ∀∃-3CNF formula (clauses drawn uniformly over
/// pairwise-distinct variables and random polarities).
QbfFormula RandomQbf(int num_exists, int num_forall, int num_clauses,
                     uint64_t seed);

}  // namespace relcont

#endif  // RELCONT_RELCONT_PI2P_REDUCTION_H_
