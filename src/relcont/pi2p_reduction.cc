#include "relcont/pi2p_reduction.h"

#include <random>
#include <string>

namespace relcont {

namespace {

bool ClauseSatisfied(const QbfClause& clause,
                     const std::vector<bool>& assignment) {
  for (const QbfLiteral& lit : clause.literals) {
    if (assignment[lit.variable] != lit.negated) return true;
  }
  return false;
}

bool AllClausesSatisfied(const QbfFormula& f,
                         const std::vector<bool>& assignment) {
  for (const QbfClause& c : f.clauses) {
    if (!ClauseSatisfied(c, assignment)) return false;
  }
  return true;
}

}  // namespace

bool Satisfiable(const QbfFormula& f) {
  int n = f.num_variables();
  std::vector<bool> assignment(n, false);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    for (int i = 0; i < n; ++i) assignment[i] = (mask >> i) & 1;
    if (AllClausesSatisfied(f, assignment)) return true;
  }
  return false;
}

bool ForallExistsSatisfiable(const QbfFormula& f) {
  std::vector<bool> assignment(f.num_variables(), false);
  for (uint64_t y = 0; y < (uint64_t{1} << f.num_forall); ++y) {
    for (int j = 0; j < f.num_forall; ++j) {
      assignment[f.num_exists + j] = (y >> j) & 1;
    }
    bool exists = false;
    for (uint64_t x = 0; x < (uint64_t{1} << f.num_exists) && !exists; ++x) {
      for (int i = 0; i < f.num_exists; ++i) assignment[i] = (x >> i) & 1;
      exists = AllClausesSatisfied(f, assignment);
    }
    if (!exists) return false;
  }
  return true;
}

Result<Pi2pInstance> BuildPi2pReduction(const QbfFormula& formula,
                                        Interner* interner) {
  if (formula.clauses.empty()) {
    return Status::InvalidArgument("formula must have at least one clause");
  }
  for (const QbfClause& c : formula.clauses) {
    if (c.literals[0].variable == c.literals[1].variable ||
        c.literals[0].variable == c.literals[2].variable ||
        c.literals[1].variable == c.literals[2].variable) {
      return Status::InvalidArgument(
          "reduction requires pairwise-distinct clause variables");
    }
    for (const QbfLiteral& lit : c.literals) {
      if (lit.variable < 0 || lit.variable >= formula.num_variables()) {
        return Status::InvalidArgument("literal variable out of range");
      }
    }
  }

  Pi2pInstance out;
  auto var_term = [&](int v) {
    // Existential x_i / universal y_j variables of the formula become
    // datalog variables of the same names.
    std::string name = v < formula.num_exists
                           ? "X" + std::to_string(v)
                           : "Y" + std::to_string(v - formula.num_exists);
    return Term::Var(interner->Intern(name));
  };
  Term zero = Term::Number(Rational(0));
  Term one = Term::Number(Rational(1));

  // --- Q1: records which variables occur in each clause, plus e_j(y_j).
  Rule q1;
  q1.head = Atom(interner->Intern("q1"), {});
  for (size_t i = 0; i < formula.clauses.size(); ++i) {
    const QbfClause& c = formula.clauses[i];
    SymbolId r_i = interner->Intern("r" + std::to_string(i));
    q1.body.emplace_back(
        r_i, std::vector<Term>{var_term(c.literals[0].variable),
                               var_term(c.literals[1].variable),
                               var_term(c.literals[2].variable)});
  }
  for (int j = 0; j < formula.num_forall; ++j) {
    SymbolId e_j = interner->Intern("e" + std::to_string(j));
    q1.body.emplace_back(
        e_j, std::vector<Term>{var_term(formula.num_exists + j)});
  }
  out.q1.program.rules.push_back(q1);
  out.q1.goal = q1.head.predicate;

  // --- Q2: the seven satisfying rows of each clause, plus e_j(u_j).
  Rule q2;
  q2.head = Atom(interner->Intern("q2"), {});
  for (size_t i = 0; i < formula.clauses.size(); ++i) {
    const QbfClause& c = formula.clauses[i];
    SymbolId r_i = interner->Lookup("r" + std::to_string(i));
    for (int bits = 0; bits < 8; ++bits) {
      bool a0 = bits & 1, a1 = (bits >> 1) & 1, a2 = (bits >> 2) & 1;
      bool satisfied = (a0 != c.literals[0].negated) ||
                       (a1 != c.literals[1].negated) ||
                       (a2 != c.literals[2].negated);
      if (!satisfied) continue;
      q2.body.emplace_back(
          r_i, std::vector<Term>{a0 ? one : zero, a1 ? one : zero,
                                 a2 ? one : zero});
    }
  }
  for (int j = 0; j < formula.num_forall; ++j) {
    SymbolId e_j = interner->Lookup("e" + std::to_string(j));
    Term u_j = Term::Var(interner->Intern("U" + std::to_string(j)));
    q2.body.emplace_back(e_j, std::vector<Term>{u_j});
  }
  out.q2.program.rules.push_back(q2);
  out.q2.goal = q2.head.predicate;

  // --- Views: v_i mirrors r_i; w_{j,0} / w_{j,1} fix each truth value of
  // the universal variables.
  for (size_t i = 0; i < formula.clauses.size(); ++i) {
    ViewDefinition v;
    Term z1 = Term::Var(interner->Intern("Z1"));
    Term z2 = Term::Var(interner->Intern("Z2"));
    Term z3 = Term::Var(interner->Intern("Z3"));
    v.rule.head = Atom(interner->Intern("v" + std::to_string(i)),
                       {z1, z2, z3});
    v.rule.body.emplace_back(interner->Lookup("r" + std::to_string(i)),
                             std::vector<Term>{z1, z2, z3});
    RELCONT_RETURN_NOT_OK(out.views.Add(std::move(v)));
  }
  for (int j = 0; j < formula.num_forall; ++j) {
    for (int b = 0; b <= 1; ++b) {
      ViewDefinition w;
      w.rule.head =
          Atom(interner->Intern("w" + std::to_string(j) + "_" +
                                std::to_string(b)),
               {});
      w.rule.body.emplace_back(interner->Lookup("e" + std::to_string(j)),
                               std::vector<Term>{b == 0 ? zero : one});
      RELCONT_RETURN_NOT_OK(out.views.Add(std::move(w)));
    }
  }
  return out;
}

QbfFormula RandomQbf(int num_exists, int num_forall, int num_clauses,
                     uint64_t seed) {
  QbfFormula f;
  f.num_exists = num_exists;
  f.num_forall = num_forall;
  std::mt19937_64 rng(seed);
  int n = f.num_variables();
  std::uniform_int_distribution<int> var_dist(0, n - 1);
  std::uniform_int_distribution<int> bit(0, 1);
  for (int c = 0; c < num_clauses; ++c) {
    QbfClause clause;
    int v0 = var_dist(rng);
    int v1 = v0, v2 = v0;
    while (v1 == v0) v1 = var_dist(rng);
    while (v2 == v0 || v2 == v1) v2 = var_dist(rng);
    clause.literals[0] = {v0, bit(rng) == 1};
    clause.literals[1] = {v1, bit(rng) == 1};
    clause.literals[2] = {v2, bit(rng) == 1};
    f.clauses.push_back(clause);
  }
  return f;
}

}  // namespace relcont
