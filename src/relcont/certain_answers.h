#ifndef RELCONT_RELCONT_CERTAIN_ANSWERS_H_
#define RELCONT_RELCONT_CERTAIN_ANSWERS_H_

#include "eval/evaluator.h"
#include "rewriting/inverse_rules.h"

namespace relcont {

/// Certain answers (Definition 2.1): t is a certain answer to Q w.r.t. a
/// source instance I if t ∈ Q(D) for every database D over the mediated
/// schema with I ⊆ V(D) (incomplete sources / open-world assumption).
///
/// Three implementations are provided; the first is the production path,
/// the others are independent oracles used for cross-validation:
///  1. plan-based: evaluate the maximally-contained inverse-rule plan
///     (complete for datalog queries and conjunctive views [AD98, DGL]);
///  2. canonical-database: build the chase of the instance with labelled
///     nulls and evaluate the query, keeping null-free answers;
///  3. brute force: enumerate candidate databases over a bounded domain —
///     exponential, supports complete (closed-world) sources, exact on the
///     small instances used in tests (Example 5).

/// Plan-based certain answers. The query must be comparison-free and over
/// the mediated schema.
Result<std::vector<Tuple>> CertainAnswers(const Program& query, SymbolId goal,
                                          const ViewSet& views,
                                          const Database& instance,
                                          Interner* interner);

/// A certain answer together with the conjunctive plans that justify it —
/// which sources were combined, and through which rewriting. One answer
/// may have several independent justifications.
struct ProvenancedAnswer {
  Tuple tuple;
  /// Indices into the plan UCQ (also returned) of the disjuncts deriving
  /// the tuple on this instance.
  std::vector<int> disjuncts;
  /// Union of the source predicates those disjuncts read.
  std::set<SymbolId> sources;
};

struct ProvenanceResult {
  UnionQuery plan;
  std::vector<ProvenancedAnswer> answers;
};

/// Certain answers with provenance: evaluates the function-term-free plan
/// disjunct by disjunct and attributes each answer to the rewritings (and
/// hence sources) that produce it. Comparison-free queries over the
/// mediated schema.
Result<ProvenanceResult> CertainAnswersWithProvenance(
    const Program& query, SymbolId goal, const ViewSet& views,
    const Database& instance, Interner* interner);

/// Certain answers when the query and/or views carry comparison
/// predicates, by evaluating the Theorem 5.1 comparison-aware plan.
/// Complete for the semi-interval fragment ([21], Friedman's thesis —
/// beyond it certain answers can be co-NP-hard in data complexity and no
/// plan exists); always sound.
Result<std::vector<Tuple>> CertainAnswersWithComparisons(
    const Program& query, SymbolId goal, const ViewSet& views,
    const Database& instance, Interner* interner);

/// The canonical database (chase) of `instance` under `views`: for each
/// source tuple, the view body instantiated with the tuple's values, with a
/// fresh labelled null for each existential variable. Fails if some source
/// tuple cannot match its view head (e.g. a head constant clashes).
Result<Database> CanonicalDatabase(const ViewSet& views,
                                   const Database& instance,
                                   Interner* interner);

/// Certain answers via the canonical database: Q(chase(I)) minus tuples
/// containing labelled nulls. Independent of the inverse-rules machinery.
Result<std::vector<Tuple>> CertainAnswersViaCanonical(const Program& query,
                                                      SymbolId goal,
                                                      const ViewSet& views,
                                                      const Database& instance,
                                                      Interner* interner);

struct BruteForceOptions {
  /// Fresh constants added to the active domain of the instance when
  /// enumerating candidate databases.
  int extra_constants = 1;
  /// Abort if the number of potential facts exceeds this (the enumeration
  /// is 2^potential_facts).
  int max_potential_facts = 22;
};

/// Brute-force certain answers over all candidate databases whose facts
/// draw on the instance's active domain plus `extra_constants` fresh
/// values. Respects per-view completeness: for an incomplete view,
/// consistency means v ⊆ view(D); for a complete view, v = view(D)
/// (Section 6 / Example 5). Returns kBoundReached when the space is too
/// large, and kInvalidArgument if no candidate database is consistent.
Result<std::vector<Tuple>> BruteForceCertainAnswers(
    const Program& query, SymbolId goal, const ViewSet& views,
    const Database& instance, Interner* interner,
    const BruteForceOptions& options = {});

}  // namespace relcont

#endif  // RELCONT_RELCONT_CERTAIN_ANSWERS_H_
