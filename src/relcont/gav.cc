#include "relcont/gav.h"

#include "containment/cq_containment.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"

namespace relcont {

Status GavSchema::Validate() const {
  RELCONT_RETURN_NOT_OK(definitions_.CheckSafe());
  if (definitions_.IsRecursive()) {
    return Status::InvalidArgument("GAV definitions must be nonrecursive");
  }
  for (const Rule& r : definitions_.rules) {
    if (!r.comparisons.empty()) {
      return Status::Unsupported(
          "comparisons in GAV definitions are not supported");
    }
  }
  return Status::OK();
}

Result<UnionQuery> GavSchema::Compose(const Program& query, SymbolId goal,
                                      Interner* interner,
                                      const UnfoldOptions& options) const {
  RELCONT_RETURN_NOT_OK(Validate());
  RELCONT_RETURN_NOT_OK(query.CheckSafe());
  std::set<SymbolId> sources = SourcePredicates();
  for (const Rule& r : query.rules) {
    for (const Atom& a : r.body) {
      if (sources.count(a.predicate) > 0) {
        return Status::InvalidArgument(
            "query must be over the mediated schema, not the sources");
      }
    }
  }
  Program combined = query;
  for (const Rule& r : definitions_.rules) combined.rules.push_back(r);
  if (combined.IsRecursive()) {
    return Status::InvalidArgument(
        "query predicates collide with GAV definitions");
  }
  RELCONT_ASSIGN_OR_RETURN(UnionQuery composed,
                           UnfoldToUnion(combined, goal, interner, options));
  // A query subgoal over a mediated relation with no definition can never
  // produce answers; unfolding leaves it as an EDB atom, so filter.
  UnionQuery out;
  for (Rule& d : composed.disjuncts) {
    bool answerable = true;
    for (const Atom& a : d.body) {
      if (sources.count(a.predicate) == 0) {
        answerable = false;
        break;
      }
    }
    if (answerable) out.disjuncts.push_back(std::move(d));
  }
  return out;
}

Result<GavSchema> ParseGavSchema(std::string_view text, Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(Program program, ParseProgram(text, interner));
  GavSchema schema(std::move(program));
  RELCONT_RETURN_NOT_OK(schema.Validate());
  return schema;
}

Result<RelativeContainmentResult> GavRelativelyContained(
    const GoalQuery& q1, const GoalQuery& q2, const GavSchema& schema,
    Interner* interner, const UnfoldOptions& options) {
  RelativeContainmentResult out;
  RELCONT_ASSIGN_OR_RETURN(
      out.plan1, schema.Compose(q1.program, q1.goal, interner, options));
  RELCONT_ASSIGN_OR_RETURN(
      out.plan2, schema.Compose(q2.program, q2.goal, interner, options));
  out.contained = true;
  for (const Rule& d : out.plan1.disjuncts) {
    RELCONT_ASSIGN_OR_RETURN(bool contained,
                             CqContainedInUnion(d, out.plan2));
    if (!contained) {
      out.contained = false;
      out.witness = d;
      break;
    }
  }
  return out;
}

Result<std::vector<Tuple>> GavCertainAnswers(const Program& query,
                                             SymbolId goal,
                                             const GavSchema& schema,
                                             const Database& instance,
                                             Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(UnionQuery composed,
                           schema.Compose(query, goal, interner));
  Program program;
  for (Rule& d : composed.disjuncts) program.rules.push_back(std::move(d));
  if (program.rules.empty()) return std::vector<Tuple>{};
  return EvaluateGoal(program, goal, instance);
}

}  // namespace relcont
