#ifndef RELCONT_RELCONT_CEGAR_H_
#define RELCONT_RELCONT_CEGAR_H_

#include <atomic>
#include <cstdint>

#include "relcont/relative_containment.h"

namespace relcont {

/// Counterexample-guided (CEGAR) engine for the Section 3 decision.
///
/// The Theorem 3.1 procedure as written materializes BOTH unfolded plans
/// (up to 2^m disjuncts each on the Theorem 3.3 family) and scans every
/// left disjunct against the whole right union — ~4^m disjunct pairs. This
/// engine keeps the same semantics but never materializes either plan:
///
///   PROPOSE   Enumerate candidate counterexamples from a FACTORED left
///             plan: unfold Q1 to mediated-level templates, then treat
///             each template body atom as a choice point over the inverse
///             rules that can resolve it. A DFS over the choice points
///             composes the most-general unifiers incrementally; each leaf
///             is one left plan disjunct — a candidate source instance
///             (its frozen body) on which Q1 has a certain answer.
///             Candidates in which a Skolem term survives are skipped,
///             mirroring PlanToUnion's function-term elimination.
///
///   CHECK     Decide whether Q2 covers the candidate WITHOUT unfolding
///             P2: a second DFS assigns every body atom of a right
///             template an (inverse-rule copy, candidate atom) pair,
///             unifying the atom with the copy's head (resolution) and the
///             copy's produced source atom against the candidate atom with
///             the candidate's terms rigid (the containment-mapping
///             semantics — candidate variables act as frozen constants).
///             This fuses "unfold P2" and "find a homomorphism" into one
///             search, so a cover costs one backtracking walk instead of a
///             scan of 2^m materialized right disjuncts.
///
///   REFINE    A successful cover touched only some candidate atoms (its
///             support) and the head. The left choice assignment restricted
///             to the support's variable-sharing closure is learned as a
///             blocking clause: any later proposal agreeing with it
///             produces syntactically identical atoms there, so the same
///             cover applies and the proposal is pruned unchecked.
///
/// The verdict contract matches the scan exactly: a candidate no right
/// template covers is a definite NO (reported as the witness, same shape
/// as a scan witness disjunct); exhausting the proposal space is a YES;
/// budget exhaustion surfaces as kBoundReached at the `cegar_search`
/// bound site, never as a verdict. RelativeContainmentResult::plan1/plan2
/// are left EMPTY — not materializing them is the point.
///
/// Known fallback: when a query IDB predicate collides with a mediated
/// (view-body) predicate, the two-level factorization no longer mirrors
/// the joint unfold, so the call transparently falls back to the scan
/// (identical verdicts by construction).

/// Per-run counters, also pushed to the trace counters
/// (cegar_{iterations,blocking_clauses,proposals}) and the process-wide
/// aggregates below on every exit path — including error returns, so a
/// budget-tripped run still accounts for the work it did.
struct CegarStats {
  /// Left DFS leaves reached: candidates formed, including the ones
  /// skipped by function-term elimination.
  uint64_t proposals = 0;
  /// Cover checks performed (CEGAR loop iterations).
  uint64_t iterations = 0;
  /// Blocking clauses learned from successful covers.
  uint64_t blocking_clauses = 0;
};

/// Process-wide monotone counters, mirrored into METRICS, /metrics, and
/// /statusz (docs/OBSERVABILITY.md). Relaxed ordering; bumped once per
/// run, not per event, so the hot loops never touch shared cache lines.
struct CegarGlobalCounters {
  std::atomic<uint64_t> iterations{0};
  std::atomic<uint64_t> blocking_clauses{0};
  std::atomic<uint64_t> proposals{0};
};

CegarGlobalCounters& GlobalCegarCounters();

/// Decides Q1 ⊑_V Q2 with the CEGAR engine. Honors
/// `options.strategy == kAuto` by estimating the left plan width (the sum
/// over templates of the product of per-atom inverse-rule choices) and
/// delegating to the scan below CegarOptions::auto_width_threshold.
/// `stats`, when non-null, receives the run's counters even when the
/// result is an error.
Result<RelativeContainmentResult> CegarRelativelyContained(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options = {},
    CegarStats* stats = nullptr);

}  // namespace relcont

#endif  // RELCONT_RELCONT_CEGAR_H_
