#ifndef RELCONT_RELCONT_WORKLOAD_H_
#define RELCONT_RELCONT_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "eval/database.h"
#include "rewriting/views.h"

namespace relcont {

/// Reproducible synthetic workload generators used by the property tests
/// and the benchmark harness. The shapes follow the query families the
/// containment literature benchmarks on: random conjunctive queries over a
/// small relational vocabulary, chain and star joins, and random
/// projection views (the local-as-view shape of Section 2.2).

struct RandomQueryOptions {
  int num_atoms = 3;
  int num_variables = 4;
  /// Number of distinct EDB predicate names ("p0", "p1", ...).
  int num_predicates = 2;
  int arity = 2;
  /// Probability that an argument position holds a small numeric constant
  /// instead of a variable.
  double constant_probability = 0.1;
  /// Number of distinguished (head) variables.
  int head_arity = 1;
  uint64_t seed = 0;
};

/// A random conjunctive query "g(head vars) :- atoms". Safe by
/// construction (head variables are drawn from the body's variables).
Rule RandomConjunctiveQuery(const RandomQueryOptions& options,
                            std::string_view head_name, Interner* interner);

/// A chain query  g(X0, Xn) :- e(X0, X1), ..., e(X(n-1), Xn).
Rule ChainQuery(int length, std::string_view head_name,
                std::string_view edge_name, Interner* interner);

/// A star query  g(C) :- e(C, X1), ..., e(C, Xn).
Rule StarQuery(int rays, std::string_view head_name,
               std::string_view edge_name, Interner* interner);

/// Random projection/selection views over the vocabulary of
/// RandomQueryOptions: each view projects a random subset of the columns
/// of a random single-atom or two-atom body.
ViewSet RandomViews(const RandomQueryOptions& options, int num_views,
                    Interner* interner);

/// A random source instance over the given source predicates: `num_facts`
/// tuples with values drawn from a domain of `domain_size` symbolic
/// constants.
Database RandomInstance(const ViewSet& views, int num_facts, int domain_size,
                        uint64_t seed, Interner* interner);

/// A random graph database over one binary predicate.
Database RandomGraph(std::string_view edge_name, int num_nodes, int num_edges,
                     uint64_t seed, Interner* interner);

/// The path-view scenario of Romero–Preda–Suchanek ("Query Rewriting On
/// Path Views Without Integrity Constraints", PAPERS.md): web services are
/// chain-shaped views over binary mediated relations, and many require
/// their first argument bound before they can be called — exactly the
/// Section 4 binding-pattern fragment. The generator produces catalogs of
/// thousands of such views with a skewed relation distribution (popular
/// relations appear in many views, rare ones in few, as in real service
/// catalogs).
struct PathViewOptions {
  /// Chain-shaped views v0..v{n-1}.
  int num_views = 1000;
  /// Binary mediated relations e0..e{k-1}.
  int num_relations = 8;
  /// Chain length per view, uniform in [min_length, max_length].
  int min_length = 1;
  int max_length = 4;
  /// Probability that a view requires its first argument bound (gets a
  /// "bf" adornment); the rest are freely accessible.
  double bound_probability = 0.5;
  /// Zipf-style skew of the relation choice: relation r is drawn with
  /// weight (r+1)^-skew. 0 = uniform.
  double skew = 1.0;
  /// Length of the chain query posed over the mediated relations.
  int query_length = 3;
  uint64_t seed = 0;
};

/// One generated path-view scenario in registration-ready text form (no
/// interner needed — the service stores catalogs as text; see
/// service/catalog.h).
struct PathViewWorkload {
  /// View definitions, one rule per line (ParseViews syntax).
  std::string views_text;
  /// (view name, adornment) pairs for the input-bound views.
  std::vector<std::pair<std::string, std::string>> patterns;
  /// A chain query over the mediated relations (ParseProgram syntax).
  std::string query_text;
};

/// Deterministic for a fixed options struct: the same seed always yields
/// byte-identical text, so failures replay from the logged seed alone.
PathViewWorkload MakePathViewWorkload(const PathViewOptions& options);

}  // namespace relcont

#endif  // RELCONT_RELCONT_WORKLOAD_H_
