#include "relcont/relative_containment.h"

#include "binding/dom_plan.h"
#include "common/budget.h"
#include "common/parallel.h"
#include "containment/canonical.h"
#include "containment/comparison_containment.h"
#include "containment/cq_containment.h"
#include "containment/expansion.h"
#include "relcont/cegar.h"
#include "rewriting/comparison_plans.h"
#include "rewriting/inverse_rules.h"
#include "trace/trace.h"

namespace relcont {

std::string_view ContainmentStrategyName(ContainmentStrategy s) {
  switch (s) {
    case ContainmentStrategy::kScan:
      return "scan";
    case ContainmentStrategy::kCegar:
      return "cegar";
    case ContainmentStrategy::kAuto:
      return "auto";
  }
  return "scan";
}

std::optional<ContainmentStrategy> ParseContainmentStrategy(
    std::string_view name) {
  if (name == "scan") return ContainmentStrategy::kScan;
  if (name == "cegar") return ContainmentStrategy::kCegar;
  if (name == "auto") return ContainmentStrategy::kAuto;
  return std::nullopt;
}

namespace {

// The shared Π₂ᴾ hot loop: find some disjunct of `disjuncts` that `check`
// reports NOT contained. Returns its index, nullopt when every disjunct is
// covered, or an error status.
//
// Serial and parallel execution apply the SAME verdict policy, so the two
// paths agree on every input:
//   1. a definite counterexample (check returned false) always wins — even
//      when some other disjunct's check erred (e.g. hit a structural cap):
//      one failing disjunct already refutes the containment;
//   2. otherwise the first error, by disjunct index, propagates;
//   3. otherwise every disjunct completed affirmatively: contained.
// The parallel path may report a different counterexample INDEX than the
// serial path (whichever completes first cancels the rest) — the verdict is
// deterministic, the witness choice is not.
//
// `check` must not touch the interner or any other shared mutable state:
// with workers > 1 it runs concurrently on plain helper threads under a
// region WorkBudget chained to the caller's (so global deadlines apply and
// early exit cancels in-flight siblings).
Result<std::optional<size_t>> FindUncoveredDisjunct(
    const std::vector<Rule>& disjuncts, int workers,
    const std::function<Result<bool>(const Rule&)>& check) {
  const size_t n = disjuncts.size();
  if (workers <= 1 || n <= 1) {
    std::optional<Status> first_error;
    for (size_t i = 0; i < n; ++i) {
      Result<bool> r = check(disjuncts[i]);
      if (!r.ok()) {
        if (!first_error.has_value()) first_error = r.status();
        continue;
      }
      if (!*r) return std::optional<size_t>(i);
    }
    if (first_error.has_value()) return *first_error;
    return std::optional<size_t>(std::nullopt);
  }

  RELCONT_TRACE_SPAN("parallel_disjunct_scan");
  WorkBudget region(CurrentBudget());
  enum : char { kPending, kCovered, kUncovered, kError };
  // Each slot is written by exactly one worker (the one that claimed index
  // i) and read only after every worker has been joined.
  std::vector<char> state(n, kPending);
  std::vector<Status> errors(n);
  ParallelScanStats stats =
      ParallelScan(n, workers, &region, [&](size_t i) {
        Result<bool> r = check(disjuncts[i]);
        if (!r.ok()) {
          errors[i] = r.status();
          state[i] = kError;
          return true;
        }
        state[i] = *r ? kCovered : kUncovered;
        return *r;  // false => cancel the in-flight siblings
      });
  RELCONT_TRACE_COUNT(kParallelTasksSpawned,
                      static_cast<uint64_t>(stats.helpers_spawned));
  RELCONT_TRACE_COUNT(kParallelTasksCancelled,
                      static_cast<uint64_t>(stats.items_unfinished));
  for (size_t i = 0; i < n; ++i) {
    if (state[i] == kUncovered) return std::optional<size_t>(i);
  }
  // No counterexample. If the CALLER's budget (the region's parent) died,
  // the scan was truncated by deadline/steps, not by an early exit — that
  // outranks per-disjunct errors, which may themselves just be cancellation
  // echoes.
  RELCONT_RETURN_NOT_OK(BudgetOkOrBound("containment_check"));
  for (size_t i = 0; i < n; ++i) {
    if (state[i] == kError) return errors[i];
  }
  // With a healthy parent budget and no counterexample nothing was
  // cancelled, so every disjunct completed affirmatively.
  return std::optional<size_t>(std::nullopt);
}

}  // namespace

Result<RelativeContainmentResult> RelativelyContained(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options) {
  if (options.strategy != ContainmentStrategy::kScan) {
    // kCegar and kAuto route through the CEGAR engine (which itself
    // delegates narrow instances back here with strategy forced to kScan).
    return CegarRelativelyContained(q1, q2, views, interner, options);
  }
  RelativeContainmentResult out;
  {
    RELCONT_TRACE_SPAN("build_plans");
    RELCONT_ASSIGN_OR_RETURN(
        Program p1, MaximallyContainedPlan(q1.program, views, interner));
    RELCONT_ASSIGN_OR_RETURN(
        Program p2, MaximallyContainedPlan(q2.program, views, interner));
    RELCONT_ASSIGN_OR_RETURN(
        out.plan1, PlanToUnion(p1, q1.goal, views, interner, options.unfold));
    RELCONT_ASSIGN_OR_RETURN(
        out.plan2, PlanToUnion(p2, q2.goal, views, interner, options.unfold));
  }
  RELCONT_TRACE_SPAN("containment_check");
  RELCONT_ASSIGN_OR_RETURN(
      std::optional<size_t> uncovered,
      FindUncoveredDisjunct(
          out.plan1.disjuncts, options.parallel_workers,
          [&](const Rule& d) { return CqContainedInUnion(d, out.plan2); }));
  out.contained = !uncovered.has_value();
  if (uncovered.has_value()) out.witness = out.plan1.disjuncts[*uncovered];
  return out;
}

Result<bool> RelativelyEquivalent(const GoalQuery& q1, const GoalQuery& q2,
                                  const ViewSet& views, Interner* interner,
                                  const RelativeContainmentOptions& options) {
  RELCONT_ASSIGN_OR_RETURN(RelativeContainmentResult forward,
                           RelativelyContained(q1, q2, views, interner,
                                               options));
  if (!forward.contained) return false;
  RELCONT_ASSIGN_OR_RETURN(RelativeContainmentResult backward,
                           RelativelyContained(q2, q1, views, interner,
                                               options));
  return backward.contained;
}

Result<bool> RelativelyContainedOneRecursive(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const OneRecursiveOptions& options, Rule* witness) {
  bool q1_recursive = q1.program.IsRecursive();
  bool q2_recursive = q2.program.IsRecursive();
  if (q1_recursive && q2_recursive) {
    return Status::Unsupported(
        "Theorem 3.2 requires at most one recursive query; containment of "
        "two recursive datalog programs is undecidable [Shmueli]");
  }
  if (!q1_recursive && !q2_recursive) {
    RELCONT_ASSIGN_OR_RETURN(RelativeContainmentResult plain,
                             RelativelyContained(q1, q2, views, interner));
    if (!plain.contained && witness != nullptr && plain.witness.has_value()) {
      *witness = *plain.witness;
    }
    return plain.contained;
  }
  if (q2_recursive) {
    // Exact: UCQ plan of Q1 contained in the recursive plan of Q2, by
    // canonical databases.
    UnionQuery plan1;
    Program p2;
    {
      RELCONT_TRACE_SPAN("build_plans");
      RELCONT_ASSIGN_OR_RETURN(
          Program p1, MaximallyContainedPlan(q1.program, views, interner));
      RELCONT_ASSIGN_OR_RETURN(
          plan1, PlanToUnion(p1, q1.goal, views, interner, options.unfold));
      RELCONT_ASSIGN_OR_RETURN(
          p2, MaximallyContainedPlan(q2.program, views, interner));
    }
    RELCONT_TRACE_SPAN("containment_check");
    return UnionContainedInDatalog(plan1, p2, q2.goal, interner, witness);
  }
  // Q1 recursive: P1^exp ⊑ Q2 via bounded expansion search. Build the
  // expansion with the binding-pattern machinery (empty pattern set) so
  // the plan's mediated relations are renamed apart from the stored ones,
  // then drop the unused dom apparatus.
  Program pruned;
  UnionQuery q2_ucq;
  {
    RELCONT_TRACE_SPAN("build_plans");
    BindingPatterns no_patterns;
    RELCONT_ASSIGN_OR_RETURN(
        ExecutablePlanResult plan,
        ExecutablePlan(q1.program, views, no_patterns, interner));
    RELCONT_ASSIGN_OR_RETURN(
        Program p1_exp,
        ExpandExecutablePlanForContainment(plan, q1.goal, views, interner));
    for (Rule& r : p1_exp.rules) {
      if (r.head.predicate != plan.dom_predicate) {
        pruned.rules.push_back(std::move(r));
      }
    }
    RELCONT_ASSIGN_OR_RETURN(
        q2_ucq, UnfoldToUnion(q2.program, q2.goal, interner, options.unfold));
  }
  RELCONT_TRACE_SPAN("containment_check");
  ExpansionOptions bounds;
  bounds.max_rule_applications = options.max_rule_applications;
  bounds.max_expansions = options.max_expansions;
  return DatalogContainedInUcqBounded(pruned, q1.goal, q2_ucq, interner,
                                      bounds, witness);
}

Result<std::set<SymbolId>> RelevantSources(const GoalQuery& query,
                                           const ViewSet& views,
                                           Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(
      Program plan, MaximallyContainedPlan(query.program, views, interner));
  RELCONT_ASSIGN_OR_RETURN(UnionQuery full,
                           PlanToUnion(plan, query.goal, views, interner));
  std::set<SymbolId> relevant;
  for (const ViewDefinition& dropped : views.views()) {
    ViewSet fewer;
    for (const ViewDefinition& v : views.views()) {
      if (v.source_predicate() != dropped.source_predicate()) {
        RELCONT_RETURN_NOT_OK(fewer.Add(v));
      }
    }
    RELCONT_ASSIGN_OR_RETURN(
        Program reduced_plan,
        MaximallyContainedPlan(query.program, fewer, interner));
    RELCONT_ASSIGN_OR_RETURN(
        UnionQuery reduced,
        PlanToUnion(reduced_plan, query.goal, fewer, interner));
    // The reduced plan is always contained in the full one; the source is
    // relevant iff the converse fails.
    RELCONT_ASSIGN_OR_RETURN(bool same, UnionContainedInUnion(full, reduced));
    if (!same) relevant.insert(dropped.source_predicate());
  }
  return relevant;
}

Result<bool> RelativelyContainedViaExpansion(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options,
    Rule* witness) {
  for (const Rule& r : q1.program.rules) {
    if (!r.comparisons.empty()) {
      return Status::Unsupported(
          "Theorem 5.2 requires the contained query to be comparison-free");
    }
  }
  UnionQuery p1_exp;
  UnionQuery q2_ucq;
  {
    RELCONT_TRACE_SPAN("build_plans");
    RELCONT_ASSIGN_OR_RETURN(
        Program p1, MaximallyContainedPlan(q1.program, views, interner));
    RELCONT_ASSIGN_OR_RETURN(
        UnionQuery plan1, PlanToUnion(p1, q1.goal, views, interner,
                                      options.unfold));
    RELCONT_ASSIGN_OR_RETURN(p1_exp, ExpandUnionPlan(plan1, views, interner));
    RELCONT_ASSIGN_OR_RETURN(
        q2_ucq, UnfoldToUnion(q2.program, q2.goal, interner, options.unfold));
  }
  RELCONT_TRACE_SPAN("containment_check");
  RELCONT_ASSIGN_OR_RETURN(
      std::optional<size_t> uncovered,
      FindUncoveredDisjunct(p1_exp.disjuncts, options.parallel_workers,
                            [&](const Rule& d) {
                              return CqContainedInUnionComplete(d, q2_ucq);
                            }));
  if (uncovered.has_value()) {
    if (witness != nullptr) *witness = p1_exp.disjuncts[*uncovered];
    return false;
  }
  return true;
}

Result<RelativeContainmentResult> RelativelyContainedWithComparisons(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options) {
  RelativeContainmentResult out;
  {
    RELCONT_TRACE_SPAN("build_plans");
    RELCONT_ASSIGN_OR_RETURN(
        out.plan1, ComparisonAwarePlan(q1.program, q1.goal, views, interner,
                                       options.unfold));
    RELCONT_ASSIGN_OR_RETURN(
        out.plan2, ComparisonAwarePlan(q2.program, q2.goal, views, interner,
                                       options.unfold));
  }
  RELCONT_TRACE_SPAN("containment_check");
  // Compare over consistent instances: each left disjunct may assume every
  // comparison its views guarantee. Augmentation touches the interner, so
  // it runs up front on this thread; the fanned-out checks below are
  // interner-free.
  std::vector<Rule> augmented;
  augmented.reserve(out.plan1.disjuncts.size());
  for (const Rule& d : out.plan1.disjuncts) {
    RELCONT_ASSIGN_OR_RETURN(Rule a,
                             AugmentWithViewConstraints(d, views, interner));
    augmented.push_back(std::move(a));
  }
  RELCONT_ASSIGN_OR_RETURN(
      std::optional<size_t> uncovered,
      FindUncoveredDisjunct(augmented, options.parallel_workers,
                            [&](const Rule& a) {
                              return CqContainedInUnionComplete(a, out.plan2);
                            }));
  out.contained = !uncovered.has_value();
  if (uncovered.has_value()) {
    // The witness is the *augmented* disjunct — the raw disjunct without
    // its view-guaranteed comparisons may still be contained, so only the
    // augmented form genuinely fails on a consistent source instance
    // (this mirrors the section3 path, where the disjunct that failed the
    // check is exactly the witness reported).
    out.witness = augmented[*uncovered];
  }
  return out;
}

}  // namespace relcont
