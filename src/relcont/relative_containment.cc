#include "relcont/relative_containment.h"

#include "binding/dom_plan.h"
#include "containment/canonical.h"
#include "containment/comparison_containment.h"
#include "containment/cq_containment.h"
#include "containment/expansion.h"
#include "rewriting/comparison_plans.h"
#include "rewriting/inverse_rules.h"
#include "trace/trace.h"

namespace relcont {

Result<RelativeContainmentResult> RelativelyContained(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options) {
  RelativeContainmentResult out;
  {
    RELCONT_TRACE_SPAN("build_plans");
    RELCONT_ASSIGN_OR_RETURN(
        Program p1, MaximallyContainedPlan(q1.program, views, interner));
    RELCONT_ASSIGN_OR_RETURN(
        Program p2, MaximallyContainedPlan(q2.program, views, interner));
    RELCONT_ASSIGN_OR_RETURN(
        out.plan1, PlanToUnion(p1, q1.goal, views, interner, options.unfold));
    RELCONT_ASSIGN_OR_RETURN(
        out.plan2, PlanToUnion(p2, q2.goal, views, interner, options.unfold));
  }
  RELCONT_TRACE_SPAN("containment_check");
  out.contained = true;
  for (const Rule& d : out.plan1.disjuncts) {
    RELCONT_ASSIGN_OR_RETURN(bool contained,
                             CqContainedInUnion(d, out.plan2));
    if (!contained) {
      out.contained = false;
      out.witness = d;
      break;
    }
  }
  return out;
}

Result<bool> RelativelyEquivalent(const GoalQuery& q1, const GoalQuery& q2,
                                  const ViewSet& views, Interner* interner,
                                  const RelativeContainmentOptions& options) {
  RELCONT_ASSIGN_OR_RETURN(RelativeContainmentResult forward,
                           RelativelyContained(q1, q2, views, interner,
                                               options));
  if (!forward.contained) return false;
  RELCONT_ASSIGN_OR_RETURN(RelativeContainmentResult backward,
                           RelativelyContained(q2, q1, views, interner,
                                               options));
  return backward.contained;
}

Result<bool> RelativelyContainedOneRecursive(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const OneRecursiveOptions& options, Rule* witness) {
  bool q1_recursive = q1.program.IsRecursive();
  bool q2_recursive = q2.program.IsRecursive();
  if (q1_recursive && q2_recursive) {
    return Status::Unsupported(
        "Theorem 3.2 requires at most one recursive query; containment of "
        "two recursive datalog programs is undecidable [Shmueli]");
  }
  if (!q1_recursive && !q2_recursive) {
    RELCONT_ASSIGN_OR_RETURN(RelativeContainmentResult plain,
                             RelativelyContained(q1, q2, views, interner));
    if (!plain.contained && witness != nullptr && plain.witness.has_value()) {
      *witness = *plain.witness;
    }
    return plain.contained;
  }
  if (q2_recursive) {
    // Exact: UCQ plan of Q1 contained in the recursive plan of Q2, by
    // canonical databases.
    UnionQuery plan1;
    Program p2;
    {
      RELCONT_TRACE_SPAN("build_plans");
      RELCONT_ASSIGN_OR_RETURN(
          Program p1, MaximallyContainedPlan(q1.program, views, interner));
      RELCONT_ASSIGN_OR_RETURN(
          plan1, PlanToUnion(p1, q1.goal, views, interner, options.unfold));
      RELCONT_ASSIGN_OR_RETURN(
          p2, MaximallyContainedPlan(q2.program, views, interner));
    }
    RELCONT_TRACE_SPAN("containment_check");
    return UnionContainedInDatalog(plan1, p2, q2.goal, interner, witness);
  }
  // Q1 recursive: P1^exp ⊑ Q2 via bounded expansion search. Build the
  // expansion with the binding-pattern machinery (empty pattern set) so
  // the plan's mediated relations are renamed apart from the stored ones,
  // then drop the unused dom apparatus.
  Program pruned;
  UnionQuery q2_ucq;
  {
    RELCONT_TRACE_SPAN("build_plans");
    BindingPatterns no_patterns;
    RELCONT_ASSIGN_OR_RETURN(
        ExecutablePlanResult plan,
        ExecutablePlan(q1.program, views, no_patterns, interner));
    RELCONT_ASSIGN_OR_RETURN(
        Program p1_exp,
        ExpandExecutablePlanForContainment(plan, q1.goal, views, interner));
    for (Rule& r : p1_exp.rules) {
      if (r.head.predicate != plan.dom_predicate) {
        pruned.rules.push_back(std::move(r));
      }
    }
    RELCONT_ASSIGN_OR_RETURN(
        q2_ucq, UnfoldToUnion(q2.program, q2.goal, interner, options.unfold));
  }
  RELCONT_TRACE_SPAN("containment_check");
  ExpansionOptions bounds;
  bounds.max_rule_applications = options.max_rule_applications;
  bounds.max_expansions = options.max_expansions;
  return DatalogContainedInUcqBounded(pruned, q1.goal, q2_ucq, interner,
                                      bounds, witness);
}

Result<std::set<SymbolId>> RelevantSources(const GoalQuery& query,
                                           const ViewSet& views,
                                           Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(
      Program plan, MaximallyContainedPlan(query.program, views, interner));
  RELCONT_ASSIGN_OR_RETURN(UnionQuery full,
                           PlanToUnion(plan, query.goal, views, interner));
  std::set<SymbolId> relevant;
  for (const ViewDefinition& dropped : views.views()) {
    ViewSet fewer;
    for (const ViewDefinition& v : views.views()) {
      if (v.source_predicate() != dropped.source_predicate()) {
        RELCONT_RETURN_NOT_OK(fewer.Add(v));
      }
    }
    RELCONT_ASSIGN_OR_RETURN(
        Program reduced_plan,
        MaximallyContainedPlan(query.program, fewer, interner));
    RELCONT_ASSIGN_OR_RETURN(
        UnionQuery reduced,
        PlanToUnion(reduced_plan, query.goal, fewer, interner));
    // The reduced plan is always contained in the full one; the source is
    // relevant iff the converse fails.
    RELCONT_ASSIGN_OR_RETURN(bool same, UnionContainedInUnion(full, reduced));
    if (!same) relevant.insert(dropped.source_predicate());
  }
  return relevant;
}

Result<bool> RelativelyContainedViaExpansion(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options,
    Rule* witness) {
  for (const Rule& r : q1.program.rules) {
    if (!r.comparisons.empty()) {
      return Status::Unsupported(
          "Theorem 5.2 requires the contained query to be comparison-free");
    }
  }
  UnionQuery p1_exp;
  UnionQuery q2_ucq;
  {
    RELCONT_TRACE_SPAN("build_plans");
    RELCONT_ASSIGN_OR_RETURN(
        Program p1, MaximallyContainedPlan(q1.program, views, interner));
    RELCONT_ASSIGN_OR_RETURN(
        UnionQuery plan1, PlanToUnion(p1, q1.goal, views, interner,
                                      options.unfold));
    RELCONT_ASSIGN_OR_RETURN(p1_exp, ExpandUnionPlan(plan1, views, interner));
    RELCONT_ASSIGN_OR_RETURN(
        q2_ucq, UnfoldToUnion(q2.program, q2.goal, interner, options.unfold));
  }
  RELCONT_TRACE_SPAN("containment_check");
  for (const Rule& d : p1_exp.disjuncts) {
    RELCONT_ASSIGN_OR_RETURN(bool contained,
                             CqContainedInUnionComplete(d, q2_ucq));
    if (!contained) {
      if (witness != nullptr) *witness = d;
      return false;
    }
  }
  return true;
}

Result<RelativeContainmentResult> RelativelyContainedWithComparisons(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options) {
  RelativeContainmentResult out;
  {
    RELCONT_TRACE_SPAN("build_plans");
    RELCONT_ASSIGN_OR_RETURN(
        out.plan1, ComparisonAwarePlan(q1.program, q1.goal, views, interner,
                                       options.unfold));
    RELCONT_ASSIGN_OR_RETURN(
        out.plan2, ComparisonAwarePlan(q2.program, q2.goal, views, interner,
                                       options.unfold));
  }
  RELCONT_TRACE_SPAN("containment_check");
  out.contained = true;
  for (const Rule& d : out.plan1.disjuncts) {
    // Compare over consistent instances: the left disjunct may assume every
    // comparison its views guarantee.
    RELCONT_ASSIGN_OR_RETURN(Rule augmented,
                             AugmentWithViewConstraints(d, views, interner));
    RELCONT_ASSIGN_OR_RETURN(bool contained,
                             CqContainedInUnionComplete(augmented, out.plan2));
    if (!contained) {
      out.contained = false;
      // The witness is the *augmented* disjunct — the raw disjunct without
      // its view-guaranteed comparisons may still be contained, so only the
      // augmented form genuinely fails on a consistent source instance
      // (this mirrors the section3 path, where the disjunct that failed the
      // check is exactly the witness reported).
      out.witness = augmented;
      break;
    }
  }
  return out;
}

}  // namespace relcont
