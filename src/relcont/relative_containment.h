#ifndef RELCONT_RELCONT_RELATIVE_CONTAINMENT_H_
#define RELCONT_RELCONT_RELATIVE_CONTAINMENT_H_

#include <optional>
#include <string_view>

#include "datalog/unfold.h"
#include "rewriting/views.h"

namespace relcont {

/// Relative containment, Definition 2.3:  Q1 ⊑_V Q2  iff for every source
/// instance I, certain(Q1, I) ⊆ certain(Q2, I).
///
/// This header covers Section 3: positive (nonrecursive, comparison-free)
/// queries over conjunctive views with incomplete sources. The decision
/// procedure follows Theorem 3.1: build each query's maximally-contained
/// plan with the inverse rules, eliminate function terms, unfold to UCQs
/// over the sources, and test UCQ containment — Π₂ᴾ overall (the unfolded
/// plans can be exponentially large, each disjunct check is an NP
/// containment-mapping search), which Theorem 3.3 shows is optimal.

/// A query paired with its goal predicate.
struct GoalQuery {
  Program program;
  SymbolId goal = kInvalidSymbol;
};

/// Which engine runs the Section 3 plan comparison.
enum class ContainmentStrategy : int {
  /// Materialize both UCQ plans and scan every left disjunct against the
  /// full right union (the Theorem 3.1 procedure as written; parallelized
  /// per disjunct).
  kScan = 0,
  /// Counterexample-guided search (relcont/cegar.h): propose candidate
  /// source instances from a factored left plan, check cover on demand,
  /// learn blocking clauses. Identical verdicts; cheaper by roughly the
  /// right plan's width on wide instances; does NOT materialize the plans
  /// (RelativeContainmentResult::plan1/plan2 stay empty).
  kCegar,
  /// Estimate the left plan width and pick: kCegar at or above
  /// CegarOptions::auto_width_threshold, kScan below it.
  kAuto,
};

/// Short stable name ("scan", "cegar", "auto") for the protocol option and
/// the service cache fingerprint.
std::string_view ContainmentStrategyName(ContainmentStrategy s);

/// Parses the names produced by ContainmentStrategyName; nullopt on no
/// match (protocol callers reject the token with the valid spellings).
std::optional<ContainmentStrategy> ParseContainmentStrategy(
    std::string_view name);

/// Knobs for the CEGAR engine (see relcont/cegar.h).
struct CegarOptions {
  /// Learn a blocking clause from every successful cover and prune later
  /// proposals it subsumes. Turning this off never changes a verdict —
  /// the property tests rely on that (blocking-soundness seam); it only
  /// costs extra cover checks.
  bool enable_blocking = true;
  /// Left plan-width estimate at or above which kAuto picks the CEGAR
  /// engine. 2^9: the measured scan/cegar crossover on the Theorem 3.3
  /// family sits near 2^10 plan disjuncts (see EXPERIMENTS.md), and the
  /// estimate is an upper bound on the real width.
  int64_t auto_width_threshold = 512;
};

struct RelativeContainmentOptions {
  UnfoldOptions unfold;
  /// Fan-out width for the per-disjunct containment checks (the Π₂ᴾ hot
  /// loop): <= 1 runs serially on the calling thread; k > 1 shares the
  /// disjuncts across up to k threads (caller included) with
  /// first-counterexample-wins early exit. The VERDICT is identical to the
  /// serial path's; only which witness disjunct gets reported may differ.
  /// Plan construction (which touches the interner) always stays on the
  /// calling thread.
  int parallel_workers = 1;
  /// Engine for the Section 3 check. The library default stays kScan so
  /// direct callers (oracles, differential baselines) keep the exact
  /// pipeline they had; the service front door (DecideOptions) defaults
  /// to kAuto. Only the Section 3 regime honors this — the Theorem
  /// 3.2/5.1/5.2 routes always scan.
  ContainmentStrategy strategy = ContainmentStrategy::kScan;
  CegarOptions cegar;
};

/// Detailed outcome of a relative-containment decision.
struct RelativeContainmentResult {
  bool contained = false;
  /// The function-term-free UCQ plans over the sources used in the check.
  UnionQuery plan1;
  UnionQuery plan2;
  /// A witness disjunct of plan1 not contained in plan2 (set when
  /// !contained): evaluating it on its frozen body yields a source instance
  /// where certain(Q1) ⊄ certain(Q2).
  std::optional<Rule> witness;
};

/// Decides Q1 ⊑_V Q2 (Theorem 3.1 procedure). Queries must be
/// nonrecursive, comparison-free, and posed over the mediated schema.
Result<RelativeContainmentResult> RelativelyContained(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options = {});

/// Convenience: both directions.
Result<bool> RelativelyEquivalent(const GoalQuery& q1, const GoalQuery& q2,
                                  const ViewSet& views, Interner* interner,
                                  const RelativeContainmentOptions& options = {});

/// Section 5, Theorems 5.2/5.3: Q1 positive and comparison-free; Q2 and the
/// views may contain arbitrary comparison predicates. Decides Q1 ⊑_V Q2 by
/// the reduction  Q1 ⊑_V Q2  ⇔  P1^exp ⊑ Q2 , where P1 is Q1's
/// maximally-contained plan; the right-hand side is ordinary containment of
/// UCQs with comparisons (in Π₂ᴾ; the bound is tight by Theorem 3.3).
/// When the containment fails and `witness` is non-null, it receives the
/// failing expansion disjunct of Q1's plan.
Result<bool> RelativelyContainedViaExpansion(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options = {},
    Rule* witness = nullptr);

/// Theorem 3.2: relative containment is decidable when at most one of the
/// two queries is recursive. The two directions differ sharply:
///
///  * Q2 recursive (Q1 nonrecursive): exact — Q1's plan unfolds to a UCQ,
///    whose containment in Q2's recursive plan is decided by freezing each
///    disjunct and evaluating the plan (canonical databases).
///
///  * Q1 recursive (Q2 nonrecursive): the check is P1^exp ⊑ Q2 (the
///    Theorem 4.1 analogue the paper notes for the unrestricted setting).
///    Chaudhuri–Vardi makes this decidable in general; this implementation
///    answers definitively when Q1's recursion fits the dom shape or a
///    counterexample expansion exists within `expansion_bounds`, and
///    reports kBoundReached otherwise.
struct OneRecursiveOptions {
  UnfoldOptions unfold;
  /// Bounds for the recursive-Q1 direction's expansion search.
  int max_rule_applications = 12;
  int64_t max_expansions = 200'000;
};

/// When the containment fails and `witness` is non-null, it receives a
/// counterexample conjunctive query over the sources (a plan disjunct or
/// bounded expansion, depending on which query recurses).
Result<bool> RelativelyContainedOneRecursive(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const OneRecursiveOptions& options = {},
    Rule* witness = nullptr);

/// The sources that MATTER for a (nonrecursive, comparison-free) query:
/// dropping an irrelevant source provably never changes the query's
/// certain answers (the maximally-contained plan stays equivalent). This
/// serves the introduction's "coverage and limitations" use case and the
/// update-independence application: certain answers are independent of
/// updates to irrelevant sources.
Result<std::set<SymbolId>> RelevantSources(const GoalQuery& query,
                                           const ViewSet& views,
                                           Interner* interner);

/// Section 5, Theorem 5.1: both queries positive with comparison
/// predicates, views conjunctive with comparison predicates. Builds both
/// comparison-aware maximally-contained plans and compares them over
/// consistent source instances (each left disjunct is augmented with the
/// comparisons its views guarantee). Complete for the semi-interval
/// fragment the theorem covers; sound in general.
Result<RelativeContainmentResult> RelativelyContainedWithComparisons(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options = {});

}  // namespace relcont

#endif  // RELCONT_RELCONT_RELATIVE_CONTAINMENT_H_
