#include "relcont/cwa.h"

#include <algorithm>
#include <functional>

namespace relcont {

namespace {

// Enumerates candidate tuples for every source predicate over the domain.
std::vector<Atom> PotentialFacts(const ViewSet& views,
                                 const std::vector<Value>& domain) {
  std::vector<Atom> out;
  for (const ViewDefinition& v : views.views()) {
    int arity = v.rule.head.arity();
    std::vector<Tuple> tuples = {{}};
    for (int i = 0; i < arity; ++i) {
      std::vector<Tuple> next;
      for (const Tuple& t : tuples) {
        for (const Value& val : domain) {
          Tuple extended = t;
          extended.push_back(Term::Constant(val));
          next.push_back(std::move(extended));
        }
      }
      tuples = std::move(next);
    }
    for (Tuple& t : tuples) {
      out.emplace_back(v.source_predicate(), std::move(t));
    }
  }
  return out;
}

}  // namespace

Result<std::optional<CwaRefutation>> RefuteCwaContainment(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const CwaRefuterOptions& options) {
  // Mark every view complete.
  std::vector<ViewDefinition> defs = views.views();
  for (ViewDefinition& d : defs) d.complete = true;
  ViewSet complete_views(std::move(defs));

  // Domain: query/view constants plus fresh symbols.
  std::vector<Value> domain;
  auto add_value = [&](const Value& v) {
    for (const Value& w : domain) {
      if (w == v) return;
    }
    domain.push_back(v);
  };
  for (const Value& v : views.Constants()) add_value(v);
  for (const Value& v : q1.program.Constants()) add_value(v);
  for (const Value& v : q2.program.Constants()) add_value(v);
  for (int i = 0; i < options.domain_size; ++i) {
    add_value(Value::Symbol(interner->Fresh("_cw")));
  }

  std::vector<Atom> potential = PotentialFacts(complete_views, domain);

  // Enumerate instances with at most max_instance_facts facts.
  std::vector<int> chosen;
  std::optional<CwaRefutation> found;
  // Recursive combination enumeration with early exit.
  std::function<Result<bool>(int)> search =
      [&](int start) -> Result<bool> {
    // Test the current instance (including the empty one once).
    Database instance;
    for (int idx : chosen) instance.Add(potential[idx]);
    Result<std::vector<Tuple>> c1 = BruteForceCertainAnswers(
        q1.program, q1.goal, complete_views, instance, interner,
        options.brute_force);
    if (c1.ok()) {
      Result<std::vector<Tuple>> c2 = BruteForceCertainAnswers(
          q2.program, q2.goal, complete_views, instance, interner,
          options.brute_force);
      if (c2.ok()) {
        for (const Tuple& t : *c1) {
          if (std::find(c2->begin(), c2->end(), t) == c2->end()) {
            found = CwaRefutation{instance, t};
            return true;
          }
        }
      } else if (c2.status().code() == StatusCode::kBoundReached) {
        return c2.status();
      }
    } else if (c1.status().code() == StatusCode::kBoundReached) {
      return c1.status();
    }
    // (kInvalidArgument means the instance is inconsistent under CWA —
    // skip it and keep searching.)
    if (static_cast<int>(chosen.size()) >= options.max_instance_facts) {
      return false;
    }
    for (int i = start; i < static_cast<int>(potential.size()); ++i) {
      chosen.push_back(i);
      RELCONT_ASSIGN_OR_RETURN(bool done, search(i + 1));
      chosen.pop_back();
      if (done) return true;
    }
    return false;
  };
  RELCONT_ASSIGN_OR_RETURN(bool done, search(0));
  (void)done;
  return found;
}

}  // namespace relcont
