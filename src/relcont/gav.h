#ifndef RELCONT_RELCONT_GAV_H_
#define RELCONT_RELCONT_GAV_H_

#include "datalog/unfold.h"
#include "eval/database.h"
#include "relcont/relative_containment.h"

namespace relcont {

/// Global-as-view (GAV) source descriptions — the second approach the
/// paper discusses (Sections 1 and 6): here each MEDIATED relation is
/// defined as a view over the SOURCE relations, rather than the other way
/// around. The paper notes that "algorithms and complexity results for
/// relative containment are straightforward corollaries of traditional
/// query containment results" in this setting, because a query over the
/// mediated schema composes directly with the definitions into a query
/// over the sources. This module implements that corollary.
///
/// A GAV schema is a nonrecursive datalog program whose IDB predicates are
/// the mediated relations and whose EDB predicates are the sources. A
/// mediated relation may have several defining rules (union semantics).
class GavSchema {
 public:
  GavSchema() = default;
  explicit GavSchema(Program definitions)
      : definitions_(std::move(definitions)) {}

  const Program& definitions() const { return definitions_; }

  /// Mediated relations (defined by rules).
  std::set<SymbolId> MediatedPredicates() const {
    return definitions_.IdbPredicates();
  }
  /// Source relations (referenced only).
  std::set<SymbolId> SourcePredicates() const {
    return definitions_.EdbPredicates();
  }

  /// Checks the schema is safe, nonrecursive, and comparison-free.
  Status Validate() const;

  /// Composes `query` (over the mediated schema) with the definitions,
  /// yielding the equivalent UCQ over the sources. Under GAV semantics the
  /// certain answers of a query are exactly the answers of its
  /// composition on the source instance.
  Result<UnionQuery> Compose(const Program& query, SymbolId goal,
                             Interner* interner,
                             const UnfoldOptions& options = {}) const;

 private:
  Program definitions_;
};

/// Parses GAV definitions (one or more rules per mediated relation).
Result<GavSchema> ParseGavSchema(std::string_view text, Interner* interner);

/// Relative containment under GAV:  Q1 ⊑_G Q2  iff the composition of Q1
/// is classically contained in the composition of Q2 — ordinary UCQ
/// containment, hence NP-complete for conjunctive queries (in contrast to
/// the Π₂ᴾ-completeness of the local-as-view setting, Theorem 3.3).
Result<RelativeContainmentResult> GavRelativelyContained(
    const GoalQuery& q1, const GoalQuery& q2, const GavSchema& schema,
    Interner* interner, const UnfoldOptions& options = {});

/// Certain answers under GAV: evaluate the composition on the sources.
Result<std::vector<Tuple>> GavCertainAnswers(const Program& query,
                                             SymbolId goal,
                                             const GavSchema& schema,
                                             const Database& instance,
                                             Interner* interner);

}  // namespace relcont

#endif  // RELCONT_RELCONT_GAV_H_
