#ifndef RELCONT_RELCONT_VERSION_H_
#define RELCONT_RELCONT_VERSION_H_

namespace relcont {

/// Library version, bumped per release.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 4;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.4.0";

}  // namespace relcont

#endif  // RELCONT_RELCONT_VERSION_H_
