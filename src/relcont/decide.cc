#include "relcont/decide.h"

#include <memory>

#include "common/budget.h"
#include "trace/trace.h"

namespace relcont {

namespace {

bool HasComparisons(const Program& p) {
  for (const Rule& r : p.rules) {
    if (!r.comparisons.empty()) return true;
  }
  return false;
}

bool HasComparisons(const ViewSet& views) {
  for (const ViewDefinition& v : views.views()) {
    if (!v.rule.comparisons.empty()) return true;
  }
  return false;
}

}  // namespace

std::string_view RegimeName(Regime regime) {
  switch (regime) {
    case Regime::kUnknown:
      return "unknown";
    case Regime::kSection3:
      return "section3";
    case Regime::kTheorem32:
      return "theorem32";
    case Regime::kSection4:
      return "section4";
    case Regime::kTheorem51:
      return "theorem51";
    case Regime::kTheorem52:
      return "theorem52";
  }
  return "unknown";
}

Regime ParseRegime(std::string_view name) {
  if (name == "section3") return Regime::kSection3;
  if (name == "theorem32") return Regime::kTheorem32;
  if (name == "section4") return Regime::kSection4;
  if (name == "theorem51") return Regime::kTheorem51;
  if (name == "theorem52") return Regime::kTheorem52;
  return Regime::kUnknown;
}

Result<Decision> DecideRelativeContainment(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    const BindingPatterns& patterns, Interner* interner,
    const DecideOptions& options) {
  RELCONT_TRACE_SPAN("decide");
  // Library-direct callers with budget options but no installed budget get
  // a local root budget for this call. When a budget is already installed
  // (the service's per-request budget), it governs and the option fields
  // are ignored — one budget per request, owned at the outermost layer.
  std::unique_ptr<WorkBudget> local_budget;
  std::unique_ptr<BudgetScope> local_scope;
  if (CurrentBudget() == nullptr &&
      (options.timeout_ms > 0 || options.max_steps > 0)) {
    local_budget = std::make_unique<WorkBudget>();
    if (options.timeout_ms > 0) {
      local_budget->set_timeout(std::chrono::milliseconds(options.timeout_ms));
    }
    if (options.max_steps > 0) local_budget->set_max_steps(options.max_steps);
    local_scope = std::make_unique<BudgetScope>(local_budget.get());
  }
  bool comparisons = HasComparisons(q1.program) || HasComparisons(q2.program) ||
                     HasComparisons(views);
  Decision out;
  if (!patterns.empty()) {
    if (comparisons) {
      return Status::Unsupported(
          "binding patterns combined with comparison predicates are outside "
          "the paper's decidable fragments");
    }
    RELCONT_TRACE_SPAN("regime_section4");
    RELCONT_ASSIGN_OR_RETURN(
        BindingRelativeResult r,
        RelativelyContainedWithBindingPatterns(q1, q2, views, patterns,
                                               interner, options.dom));
    out.contained = r.contained;
    out.regime = Regime::kSection4;
    out.witness = r.counterexample;
    return out;
  }
  if (comparisons) {
    if (!HasComparisons(q1.program)) {
      RELCONT_TRACE_SPAN("regime_theorem52");
      RelativeContainmentOptions rel_opts;
      rel_opts.unfold = options.unfold;
      rel_opts.parallel_workers = options.parallel_workers;
      Rule witness;
      RELCONT_ASSIGN_OR_RETURN(
          bool contained,
          RelativelyContainedViaExpansion(q1, q2, views, interner, rel_opts,
                                          &witness));
      out.contained = contained;
      out.regime = Regime::kTheorem52;
      if (!contained) out.witness = witness;
      return out;
    }
    RELCONT_TRACE_SPAN("regime_theorem51");
    RelativeContainmentOptions rel_opts;
    rel_opts.unfold = options.unfold;
    rel_opts.parallel_workers = options.parallel_workers;
    RELCONT_ASSIGN_OR_RETURN(
        RelativeContainmentResult r,
        RelativelyContainedWithComparisons(q1, q2, views, interner, rel_opts));
    out.contained = r.contained;
    out.regime = Regime::kTheorem51;
    out.witness = r.witness;
    return out;
  }
  if (q1.program.IsRecursive() || q2.program.IsRecursive()) {
    RELCONT_TRACE_SPAN("regime_theorem32");
    OneRecursiveOptions rec_opts;
    rec_opts.unfold = options.unfold;
    rec_opts.max_rule_applications = options.max_rule_applications;
    Rule witness;
    RELCONT_ASSIGN_OR_RETURN(
        bool contained,
        RelativelyContainedOneRecursive(q1, q2, views, interner, rec_opts,
                                        &witness));
    out.contained = contained;
    out.regime = Regime::kTheorem32;
    if (!contained) out.witness = witness;
    return out;
  }
  RELCONT_TRACE_SPAN("regime_section3");
  RelativeContainmentOptions rel_opts;
  rel_opts.unfold = options.unfold;
  rel_opts.parallel_workers = options.parallel_workers;
  rel_opts.strategy = options.strategy;
  RELCONT_ASSIGN_OR_RETURN(
      RelativeContainmentResult r,
      RelativelyContained(q1, q2, views, interner, rel_opts));
  out.contained = r.contained;
  out.regime = Regime::kSection3;
  out.witness = r.witness;
  return out;
}

}  // namespace relcont
