#include "relcont/decide.h"

namespace relcont {

namespace {

bool HasComparisons(const Program& p) {
  for (const Rule& r : p.rules) {
    if (!r.comparisons.empty()) return true;
  }
  return false;
}

bool HasComparisons(const ViewSet& views) {
  for (const ViewDefinition& v : views.views()) {
    if (!v.rule.comparisons.empty()) return true;
  }
  return false;
}

}  // namespace

Result<Decision> DecideRelativeContainment(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    const BindingPatterns& patterns, Interner* interner,
    const DecideOptions& options) {
  bool comparisons = HasComparisons(q1.program) || HasComparisons(q2.program) ||
                     HasComparisons(views);
  Decision out;
  if (!patterns.empty()) {
    if (comparisons) {
      return Status::Unsupported(
          "binding patterns combined with comparison predicates are outside "
          "the paper's decidable fragments");
    }
    RELCONT_ASSIGN_OR_RETURN(
        BindingRelativeResult r,
        RelativelyContainedWithBindingPatterns(q1, q2, views, patterns,
                                               interner, options.dom));
    out.contained = r.contained;
    out.regime = "section4";
    out.witness = r.counterexample;
    return out;
  }
  if (comparisons) {
    if (!HasComparisons(q1.program)) {
      RelativeContainmentOptions rel_opts;
      rel_opts.unfold = options.unfold;
      RELCONT_ASSIGN_OR_RETURN(
          bool contained,
          RelativelyContainedViaExpansion(q1, q2, views, interner, rel_opts));
      out.contained = contained;
      out.regime = "theorem52";
      return out;
    }
    RelativeContainmentOptions rel_opts;
    rel_opts.unfold = options.unfold;
    RELCONT_ASSIGN_OR_RETURN(
        RelativeContainmentResult r,
        RelativelyContainedWithComparisons(q1, q2, views, interner, rel_opts));
    out.contained = r.contained;
    out.regime = "theorem51";
    out.witness = r.witness;
    return out;
  }
  if (q1.program.IsRecursive() || q2.program.IsRecursive()) {
    OneRecursiveOptions rec_opts;
    rec_opts.unfold = options.unfold;
    rec_opts.max_rule_applications = options.max_rule_applications;
    RELCONT_ASSIGN_OR_RETURN(
        bool contained,
        RelativelyContainedOneRecursive(q1, q2, views, interner, rec_opts));
    out.contained = contained;
    out.regime = "theorem32";
    return out;
  }
  RelativeContainmentOptions rel_opts;
  rel_opts.unfold = options.unfold;
  RELCONT_ASSIGN_OR_RETURN(
      RelativeContainmentResult r,
      RelativelyContained(q1, q2, views, interner, rel_opts));
  out.contained = r.contained;
  out.regime = "section3";
  out.witness = r.witness;
  return out;
}

}  // namespace relcont
