#include "relcont/certain_answers.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "datalog/substitution.h"
#include "rewriting/comparison_plans.h"

namespace relcont {

Result<std::vector<Tuple>> CertainAnswers(const Program& query, SymbolId goal,
                                          const ViewSet& views,
                                          const Database& instance,
                                          Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(Program plan,
                           MaximallyContainedPlan(query, views, interner));
  return EvaluateGoal(plan, goal, instance);
}

Result<ProvenanceResult> CertainAnswersWithProvenance(
    const Program& query, SymbolId goal, const ViewSet& views,
    const Database& instance, Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(Program plan,
                           MaximallyContainedPlan(query, views, interner));
  ProvenanceResult out;
  RELCONT_ASSIGN_OR_RETURN(out.plan,
                           PlanToUnion(plan, goal, views, interner));
  std::map<Tuple, int> index_of;  // answer -> position in out.answers
  for (size_t d = 0; d < out.plan.disjuncts.size(); ++d) {
    Program single;
    single.rules.push_back(out.plan.disjuncts[d]);
    RELCONT_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                             EvaluateGoal(single, goal, instance));
    for (Tuple& t : tuples) {
      auto [it, inserted] = index_of.emplace(t, out.answers.size());
      if (inserted) {
        ProvenancedAnswer answer;
        answer.tuple = std::move(t);
        out.answers.push_back(std::move(answer));
      }
      ProvenancedAnswer& answer = out.answers[it->second];
      answer.disjuncts.push_back(static_cast<int>(d));
      for (const Atom& a : out.plan.disjuncts[d].body) {
        answer.sources.insert(a.predicate);
      }
    }
  }
  return out;
}

Result<std::vector<Tuple>> CertainAnswersWithComparisons(
    const Program& query, SymbolId goal, const ViewSet& views,
    const Database& instance, Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(
      UnionQuery plan, ComparisonAwarePlan(query, goal, views, interner));
  if (plan.disjuncts.empty()) return std::vector<Tuple>{};
  Program program;
  for (Rule& d : plan.disjuncts) program.rules.push_back(std::move(d));
  return EvaluateGoal(program, goal, instance);
}

Result<Database> CanonicalDatabase(const ViewSet& views,
                                   const Database& instance,
                                   Interner* interner) {
  Database chase;
  for (SymbolId source : instance.Predicates()) {
    const ViewDefinition* view = views.Find(source);
    if (view == nullptr) {
      return Status::InvalidArgument(
          "instance has facts for an unknown source predicate");
    }
    for (const Tuple& tuple : instance.Tuples(source)) {
      Substitution binding;
      if (!MatchAtomAgainstGround(view->rule.head, tuple, &binding)) {
        return Status::InvalidArgument(
            "source tuple does not match its view head");
      }
      // Labelled nulls for the existential variables of this tuple.
      for (SymbolId v : view->rule.BodyVariables()) {
        if (!binding.Contains(v)) {
          binding.Bind(v, Term::Symbol(interner->Fresh("_null")));
        }
      }
      for (const Atom& a : view->rule.body) {
        chase.Add(binding.Apply(a));
      }
    }
  }
  return chase;
}

Result<std::vector<Tuple>> CertainAnswersViaCanonical(const Program& query,
                                                      SymbolId goal,
                                                      const ViewSet& views,
                                                      const Database& instance,
                                                      Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(Database chase,
                           CanonicalDatabase(views, instance, interner));
  RELCONT_ASSIGN_OR_RETURN(std::vector<Tuple> answers,
                           EvaluateGoal(query, goal, chase));
  // Keep null-free tuples. Nulls are "_null<k>" symbols; real data never
  // uses that prefix (Interner::Fresh guarantees uniqueness).
  std::vector<Tuple> out;
  for (const Tuple& t : answers) {
    bool has_null = false;
    for (const Term& term : t) {
      if (term.is_constant() && term.value().is_symbol() &&
          interner->NameOf(term.value().symbol()).rfind("_null", 0) == 0) {
        has_null = true;
        break;
      }
    }
    if (!has_null) out.push_back(t);
  }
  return out;
}

namespace {

// Evaluates a single view on a database, returning its answer tuples.
Result<std::unordered_set<Tuple, TermVecHash>> ViewAnswers(
    const ViewDefinition& view, const Database& db) {
  Program p;
  p.rules.push_back(view.rule);
  RELCONT_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                           EvaluateGoal(p, view.source_predicate(), db));
  return std::unordered_set<Tuple, TermVecHash>(tuples.begin(), tuples.end());
}

}  // namespace

Result<std::vector<Tuple>> BruteForceCertainAnswers(
    const Program& query, SymbolId goal, const ViewSet& views,
    const Database& instance, Interner* interner,
    const BruteForceOptions& options) {
  // Domain: instance active domain + constants of query and views + fresh
  // constants.
  std::vector<Value> domain = instance.ActiveDomain();
  auto add_value = [&](const Value& v) {
    for (const Value& w : domain) {
      if (w == v) return;
    }
    domain.push_back(v);
  };
  for (const Value& v : views.Constants()) add_value(v);
  for (const Value& v : query.Constants()) add_value(v);
  std::vector<Value> fresh;
  for (int i = 0; i < options.extra_constants; ++i) {
    fresh.push_back(Value::Symbol(interner->Fresh("_w")));
    add_value(fresh.back());
  }

  // Mediated predicates and their arities.
  std::map<SymbolId, int> arity;
  for (const ViewDefinition& v : views.views()) {
    for (const Atom& a : v.rule.body) arity[a.predicate] = a.arity();
  }
  std::set<SymbolId> idb = query.IdbPredicates();
  for (const Rule& r : query.rules) {
    for (const Atom& a : r.body) {
      if (idb.count(a.predicate) == 0) arity[a.predicate] = a.arity();
    }
  }

  // All potential mediated facts.
  std::vector<Atom> potential;
  for (const auto& [pred, n] : arity) {
    std::vector<Tuple> tuples = {{}};
    for (int i = 0; i < n; ++i) {
      std::vector<Tuple> next;
      for (const Tuple& t : tuples) {
        for (const Value& v : domain) {
          Tuple extended = t;
          extended.push_back(Term::Constant(v));
          next.push_back(std::move(extended));
        }
      }
      tuples = std::move(next);
    }
    for (Tuple& t : tuples) potential.emplace_back(pred, std::move(t));
  }
  if (static_cast<int>(potential.size()) > options.max_potential_facts) {
    return Status::BoundReached(
        "brute-force space too large: " + std::to_string(potential.size()) +
        " potential facts");
  }

  bool any_consistent = false;
  bool first = true;
  std::vector<Tuple> certain;
  const uint64_t limit = uint64_t{1} << potential.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    Database d;
    for (size_t i = 0; i < potential.size(); ++i) {
      if (mask & (uint64_t{1} << i)) d.Add(potential[i]);
    }
    // Consistency with the instance: v ⊆ view(D), and equality for
    // complete views.
    bool consistent = true;
    for (const ViewDefinition& view : views.views()) {
      Result<std::unordered_set<Tuple, TermVecHash>> answers =
          ViewAnswers(view, d);
      if (!answers.ok()) return answers.status();
      for (const Tuple& t : instance.Tuples(view.source_predicate())) {
        if (answers->count(t) == 0) {
          consistent = false;
          break;
        }
      }
      if (consistent && view.complete) {
        if (answers->size() !=
            static_cast<size_t>(instance.Count(view.source_predicate()))) {
          consistent = false;
        }
      }
      if (!consistent) break;
    }
    if (!consistent) continue;
    any_consistent = true;
    RELCONT_ASSIGN_OR_RETURN(std::vector<Tuple> answers,
                             EvaluateGoal(query, goal, d));
    if (first) {
      certain = std::move(answers);
      first = false;
    } else {
      std::unordered_set<Tuple, TermVecHash> keep(answers.begin(),
                                                  answers.end());
      std::vector<Tuple> next;
      for (const Tuple& t : certain) {
        if (keep.count(t) > 0) next.push_back(t);
      }
      certain = std::move(next);
    }
    if (!first && certain.empty()) break;  // intersection cannot grow
  }
  if (!any_consistent) {
    return Status::InvalidArgument(
        "no candidate database is consistent with the instance");
  }
  // A genuine certain answer can never mention the enumeration's fresh
  // constants: unbounded candidate databases include ones that avoid any
  // given fresh value entirely, while every BOUNDED candidate here shares
  // the same fresh values, so tuples mentioning them can spuriously
  // survive the intersection. Dropping them also makes the result
  // reproducible across calls, which mint different fresh symbols.
  certain.erase(std::remove_if(certain.begin(), certain.end(),
                               [&](const Tuple& t) {
                                 for (const Term& term : t) {
                                   for (const Value& v : fresh) {
                                     if (term == Term::Constant(v)) {
                                       return true;
                                     }
                                   }
                                 }
                                 return false;
                               }),
                certain.end());
  return certain;
}

}  // namespace relcont
