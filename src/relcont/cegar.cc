#include "relcont/cegar.h"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <set>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "datalog/substitution.h"
#include "datalog/unfold.h"
#include "rewriting/inverse_rules.h"
#include "trace/trace.h"

namespace relcont {

CegarGlobalCounters& GlobalCegarCounters() {
  static CegarGlobalCounters counters;
  return counters;
}

namespace {

constexpr std::string_view kBoundSite = "cegar_search";

/// Saturating helpers for the kAuto width estimate (the true width is
/// exponential; only "is it past the threshold" matters).
constexpr int64_t kWidthCap = int64_t{1} << 40;

int64_t SatMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kWidthCap / b) return kWidthCap;
  return a * b;
}

int64_t SatAdd(int64_t a, int64_t b) {
  return a > kWidthCap - b ? kWidthCap : a + b;
}

/// A binding environment with an undo trail. The DFS engines below bind
/// and unbind variables millions of times per decision, so composing a
/// fresh Substitution per node (the way the one-shot unfolder does) would
/// dominate the runtime; here a failed branch pops back to a mark.
///
/// A non-null `bindable` set splits the variables into two sorts: members
/// unify as ordinary logic variables, everything else is RIGID — it
/// behaves like a distinct constant. The cover search uses this to give
/// candidate instances containment-mapping semantics (candidate variables
/// are frozen) while the right-hand plan variables stay bindable; the
/// proposal search passes null (plain most-general unification, matching
/// the unfolder's semantics, occurs check included).
class Env {
 public:
  explicit Env(const std::unordered_set<SymbolId>* bindable = nullptr)
      : bindable_(bindable) {}

  size_t Mark() const { return trail_.size(); }
  void Undo(size_t mark) {
    while (trail_.size() > mark) {
      map_.erase(trail_.back());
      trail_.pop_back();
    }
  }
  void Clear() {
    map_.clear();
    trail_.clear();
  }

  bool UnifyAtoms(const Atom& a, const Atom& b) {
    if (a.predicate != b.predicate || a.args.size() != b.args.size()) {
      return false;
    }
    for (size_t i = 0; i < a.args.size(); ++i) {
      if (!Unify(a.args[i], b.args[i])) return false;
    }
    return true;
  }

  bool Unify(const Term& a, const Term& b) {
    const Term& x = Walk(a);
    const Term& y = Walk(b);
    if (x.is_variable() && y.is_variable() && x.symbol() == y.symbol()) {
      return true;
    }
    if (x.is_variable() && Bindable(x.symbol())) {
      SymbolId v = x.symbol();
      Term val = y;  // copy: Bind may rehash under x/y
      if (Occurs(v, val)) return false;
      Bind(v, std::move(val));
      return true;
    }
    if (y.is_variable() && Bindable(y.symbol())) {
      SymbolId v = y.symbol();
      Term val = x;
      if (Occurs(v, val)) return false;
      Bind(v, std::move(val));
      return true;
    }
    // Both sides rigid from here on: distinct rigid variables never equal
    // each other, a rigid variable never equals a constant or function.
    if (x.is_variable() || y.is_variable()) return false;
    if (x.is_function() && y.is_function()) {
      if (x.symbol() != y.symbol() || x.args().size() != y.args().size()) {
        return false;
      }
      std::vector<Term> xa = x.args();  // copies: recursion may rehash
      std::vector<Term> ya = y.args();
      for (size_t i = 0; i < xa.size(); ++i) {
        if (!Unify(xa[i], ya[i])) return false;
      }
      return true;
    }
    if (x.is_constant() && y.is_constant()) return x == y;
    return false;
  }

  /// Fully applies the current bindings (chasing, recursing through
  /// function terms). Used to materialize candidate atoms at DFS leaves.
  Term Resolve(const Term& t) const {
    const Term& w = Walk(t);
    if (w.is_function()) {
      std::vector<Term> args;
      args.reserve(w.args().size());
      for (const Term& a : w.args()) args.push_back(Resolve(a));
      return Term::Function(w.symbol(), std::move(args));
    }
    return w;
  }

  Atom Resolve(const Atom& a) const {
    Atom out;
    out.predicate = a.predicate;
    out.args.reserve(a.args.size());
    for (const Term& t : a.args) out.args.push_back(Resolve(t));
    return out;
  }

 private:
  bool Bindable(SymbolId v) const {
    return bindable_ == nullptr || bindable_->count(v) > 0;
  }
  const Term& Walk(const Term& t) const {
    const Term* p = &t;
    while (p->is_variable()) {
      auto it = map_.find(p->symbol());
      if (it == map_.end()) break;
      p = &it->second;
    }
    return *p;
  }
  bool Occurs(SymbolId v, const Term& t) const {
    const Term& w = Walk(t);
    if (w.is_variable()) return w.symbol() == v;
    if (w.is_function()) {
      for (const Term& a : w.args()) {
        if (Occurs(v, a)) return true;
      }
    }
    return false;
  }
  void Bind(SymbolId v, Term t) {
    map_.emplace(v, std::move(t));
    trail_.push_back(v);
  }

  const std::unordered_set<SymbolId>* bindable_;
  std::unordered_map<SymbolId, Term> map_;
  std::vector<SymbolId> trail_;
};

/// One inverse-rule choice for a template body atom: a renamed-apart copy
/// (head = mediated atom, body[0] = the source atom it produces). Copies
/// are per (position, option) — InvertViews leaves the view's variables
/// shared across its inverse rules, so reusing one copy at two positions
/// would link unrelated bindings.
struct LeftPosition {
  Atom goal;
  std::vector<Rule> options;
};

/// A blocking clause: "every proposal choosing exactly these options at
/// these positions is covered". Literals ascend by position; the clause is
/// indexed by its last position so the DFS tests it exactly once per
/// branch, the moment the clause becomes fully assigned.
struct Clause {
  std::vector<std::pair<int, int>> lits;  // (position, option index)
};

struct LeftTemplate {
  Rule rule;
  std::vector<LeftPosition> positions;
  /// Variable-sharing connected component per position (via the TEMPLATE
  /// atoms' variables; option variables are per-position fresh and cannot
  /// link positions). Proposals agreeing on a whole component produce
  /// syntactically identical candidate atoms there — the soundness basis
  /// for blocking-clause closure (docs/ALGORITHMS.md).
  std::vector<int> component;
  std::vector<char> component_touches_head;
  int num_components = 0;
  /// Positions with more than one inverse-rule option (the only real
  /// choice points; the proposal DFS walks them last).
  size_t num_branching = 0;
};

struct RightTemplate {
  Rule rule;  // renamed apart: right variables never collide with left
  std::vector<std::vector<Rule>> options;  // per body position
};

void ComputeComponents(LeftTemplate* t) {
  const size_t n = t->positions.size();
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int i) {
    while (parent[i] != i) i = parent[i] = parent[parent[i]];
    return i;
  };
  std::unordered_map<SymbolId, int> seen;
  std::vector<SymbolId> vars;
  for (size_t i = 0; i < n; ++i) {
    vars.clear();
    t->positions[i].goal.CollectVars(&vars);
    for (SymbolId v : vars) {
      auto [it, inserted] = seen.emplace(v, static_cast<int>(i));
      if (!inserted) parent[find(static_cast<int>(i))] = find(it->second);
    }
  }
  std::unordered_map<int, int> ids;
  t->component.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int root = find(static_cast<int>(i));
    auto [it, inserted] = ids.emplace(root, static_cast<int>(ids.size()));
    t->component[i] = it->second;
  }
  t->num_components = static_cast<int>(ids.size());
  t->component_touches_head.assign(t->num_components, 0);
  vars.clear();
  t->rule.head.CollectVars(&vars);
  for (SymbolId v : vars) {
    auto it = seen.find(v);
    if (it == seen.end()) continue;  // unsafe head var; unreachable upstream
    t->component_touches_head[t->component[find(it->second)]] = 1;
  }
}

/// The propose/check/refine loop. One instance per decision; not
/// thread-safe (mirrors the serial scan — parallelism lives above, in the
/// service's per-request threads).
class CegarSearch {
 public:
  CegarSearch(std::vector<LeftTemplate> left, std::vector<RightTemplate> right,
              std::unordered_set<SymbolId> right_vars, const CegarOptions& opts,
              CegarStats* stats)
      : left_(std::move(left)),
        right_(std::move(right)),
        right_vars_(std::move(right_vars)),
        renv_(&right_vars_),
        opts_(opts),
        stats_(stats) {}

  /// True when a counterexample was found (witness() set); false when the
  /// proposal space was exhausted (containment holds).
  Result<bool> Run() {
    for (const LeftTemplate& t : left_) {
      cur_ = &t;
      lenv_.Clear();
      assign_.assign(t.positions.size(), -1);
      clauses_by_last_.assign(t.positions.size(), {});
      template_covered_ = false;
      RELCONT_ASSIGN_OR_RETURN(bool found, Descend(0));
      if (found) return true;
    }
    return false;
  }

  const std::optional<Rule>& witness() const { return witness_; }

 private:
  Result<bool> Descend(size_t pos) {
    const LeftTemplate& t = *cur_;
    if (pos == t.positions.size()) return Leaf();
    const LeftPosition& p = t.positions[pos];
    for (int oi = 0; oi < static_cast<int>(p.options.size()); ++oi) {
      RELCONT_RETURN_NOT_OK(BudgetChargeOr(kBoundSite));
      size_t mark = lenv_.Mark();
      if (lenv_.UnifyAtoms(p.goal, p.options[oi].head)) {
        assign_[pos] = oi;
        if (!(opts_.enable_blocking && Blocked(pos))) {
          RELCONT_ASSIGN_OR_RETURN(bool found, Descend(pos + 1));
          if (found) return true;
          if (template_covered_) {
            lenv_.Undo(mark);
            return false;
          }
        }
      }
      lenv_.Undo(mark);
    }
    return false;
  }

  bool Blocked(size_t pos) const {
    for (const Clause& c : clauses_by_last_[pos]) {
      bool all = true;
      for (const auto& [i, o] : c.lits) {
        if (assign_[i] != o) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }

  Result<bool> Leaf() {
    const LeftTemplate& t = *cur_;
    ++stats_->proposals;
    // Materialize the candidate. A surviving Skolem term means this plan
    // disjunct can never hold on a real source instance — the scan's
    // PlanToUnion drops it, so the proposal is skipped unchecked.
    cand_body_.clear();
    for (size_t i = 0; i < t.positions.size(); ++i) {
      Atom a = lenv_.Resolve(t.positions[i].options[assign_[i]].body[0]);
      for (const Term& arg : a.args) {
        if (arg.ContainsFunction()) return false;
      }
      cand_body_.push_back(std::move(a));
    }
    cand_head_.clear();
    for (const Term& arg : t.rule.head.args) {
      Term r = lenv_.Resolve(arg);
      if (r.ContainsFunction()) return false;
      cand_head_.push_back(std::move(r));
    }
    targets_by_pred_.clear();
    for (size_t i = 0; i < cand_body_.size(); ++i) {
      targets_by_pred_[cand_body_[i].predicate].push_back(
          static_cast<int>(i));
    }
    ++stats_->iterations;
    RELCONT_RETURN_NOT_OK(BudgetChargeOr(kBoundSite));
    RELCONT_ASSIGN_OR_RETURN(bool covered, Covered());
    if (covered) {
      if (opts_.enable_blocking) Learn();
      return false;
    }
    // A completed, uncovered proposal is a definite counterexample — like
    // the scan's first-counterexample-wins policy, it is reported even if
    // the budget dies right after.
    witness_.emplace(Atom(t.rule.head.predicate, cand_head_), cand_body_);
    return true;
  }

  Result<bool> Covered() {
    for (const RightTemplate& rt : right_) {
      if (rt.rule.head.args.size() != cand_head_.size()) continue;
      RELCONT_ASSIGN_OR_RETURN(bool found, CoverTemplate(rt));
      if (found) return true;
    }
    return false;
  }

  Result<bool> CoverTemplate(const RightTemplate& rt) {
    const size_t n = rt.rule.body.size();
    // Most-constrained-first ordering: positions with the fewest live
    // (option × target) pairs bind first. On the Theorem 3.3 family this
    // resolves the universal variables through the e_j atoms (one live
    // pair each) before touching the 7-way clause atoms — the difference
    // between a linear walk and a 7^C blowup per candidate.
    order_.clear();
    std::vector<int> branching(n, 0);
    for (size_t j = 0; j < n; ++j) {
      int b = 0;
      for (const Rule& o : rt.options[j]) {
        auto it = targets_by_pred_.find(o.body[0].predicate);
        if (it != targets_by_pred_.end()) {
          b += static_cast<int>(it->second.size());
        }
      }
      if (b == 0) return false;  // no candidate atom can realize position j
      branching[j] = b;
      order_.push_back(static_cast<int>(j));
    }
    std::sort(order_.begin(), order_.end(),
              [&](int a, int b) { return branching[a] < branching[b]; });
    renv_.Clear();
    target_assign_.assign(n, -1);
    return CoverDescend(rt, 0);
  }

  Result<bool> CoverDescend(const RightTemplate& rt, size_t k) {
    if (k == order_.size()) {
      // All body atoms realized and matched; the cover stands iff the
      // right head equals the candidate's (head predicates are not
      // compared, exactly like the containment-mapping check).
      size_t mark = renv_.Mark();
      for (size_t i = 0; i < rt.rule.head.args.size(); ++i) {
        if (!renv_.Unify(rt.rule.head.args[i], cand_head_[i])) {
          renv_.Undo(mark);
          return false;
        }
      }
      support_ = target_assign_;
      return true;
    }
    int j = order_[k];
    for (const Rule& o : rt.options[j]) {
      auto targets = targets_by_pred_.find(o.body[0].predicate);
      if (targets == targets_by_pred_.end()) continue;
      for (int tgt : targets->second) {
        RELCONT_RETURN_NOT_OK(BudgetChargeOr(kBoundSite));
        size_t mark = renv_.Mark();
        // Resolution (template atom vs. inverse-rule head — Skolem
        // cancellation happens here) followed by the rigid match of the
        // produced source atom against the candidate atom.
        if (renv_.UnifyAtoms(rt.rule.body[j], o.head) &&
            renv_.UnifyAtoms(o.body[0], cand_body_[tgt])) {
          target_assign_[j] = tgt;
          RELCONT_ASSIGN_OR_RETURN(bool found, CoverDescend(rt, k + 1));
          if (found) return true;
        }
        renv_.Undo(mark);
      }
    }
    return false;
  }

  void Learn() {
    const LeftTemplate& t = *cur_;
    // Closure: the cover inspected the support atoms and the head, whose
    // contents are determined by the option choices on their variable-
    // sharing components. Any proposal agreeing there reproduces them
    // verbatim, so the same cover applies — block it.
    std::vector<char> mark(t.component_touches_head.begin(),
                           t.component_touches_head.end());
    for (int tgt : support_) mark[t.component[tgt]] = 1;
    Clause c;
    size_t branching_pinned = 0;
    for (size_t i = 0; i < t.positions.size(); ++i) {
      // Single-option positions carry the same choice in every proposal —
      // their literal always matches, so it is implied and dropped.
      if (t.positions[i].options.size() <= 1) continue;
      if (mark[t.component[i]]) {
        c.lits.emplace_back(static_cast<int>(i), assign_[i]);
        ++branching_pinned;
      }
    }
    if (c.lits.empty()) {
      // The cover used nothing choice-dependent: every proposal of this
      // template is covered the same way.
      ++stats_->blocking_clauses;
      template_covered_ = true;
      return;
    }
    if (branching_pinned == t.num_branching) {
      // The clause pins EVERY branching position, i.e. it denotes exactly
      // the one leaf the DFS just left and can never fire again. Storing
      // it would make Blocked() quadratic in the proposal count (the
      // Theorem 3.3 family hits exactly this: each cover's closure spans
      // the whole candidate) for zero pruning.
      return;
    }
    ++stats_->blocking_clauses;
    clauses_by_last_[c.lits.back().first].push_back(std::move(c));
  }

  std::vector<LeftTemplate> left_;
  std::vector<RightTemplate> right_;
  std::unordered_set<SymbolId> right_vars_;

  Env lenv_;                 // proposal side: plain unification
  Env renv_;                 // cover side: candidate terms rigid
  const LeftTemplate* cur_ = nullptr;
  std::vector<int> assign_;  // option choice per left position
  std::vector<std::vector<Clause>> clauses_by_last_;
  bool template_covered_ = false;

  std::vector<Atom> cand_body_;
  std::vector<Term> cand_head_;
  std::unordered_map<SymbolId, std::vector<int>> targets_by_pred_;
  std::vector<int> order_;
  std::vector<int> target_assign_;
  std::vector<int> support_;

  CegarOptions opts_;
  CegarStats* stats_;
  std::optional<Rule> witness_;
};

Result<RelativeContainmentResult> ScanFallback(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options) {
  RelativeContainmentOptions scan = options;
  scan.strategy = ContainmentStrategy::kScan;
  return RelativelyContained(q1, q2, views, interner, scan);
}

Result<RelativeContainmentResult> CegarImpl(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options,
    CegarStats* stats) {
  std::vector<LeftTemplate> left;
  std::vector<RightTemplate> right;
  std::unordered_set<SymbolId> right_vars;
  int64_t estimate = 0;
  {
    RELCONT_TRACE_SPAN("build_plans");
    // Validation parity with the scan: MaximallyContainedPlan performs the
    // Section 3 input checks (safety, comparison-free, mediated schema
    // only) for both queries and returns the inverse rules embedded in the
    // plan program, so error cases answer identically to the scan.
    RELCONT_ASSIGN_OR_RETURN(
        Program p1, MaximallyContainedPlan(q1.program, views, interner));
    RELCONT_ASSIGN_OR_RETURN(
        Program p2, MaximallyContainedPlan(q2.program, views, interner));
    (void)p2;

    std::set<SymbolId> sources = views.SourcePredicates();
    std::set<SymbolId> mediated = views.MediatedPredicates();
    // Factorization precondition: a query IDB colliding with a catalog
    // predicate would resolve against BOTH definitions in the joint
    // unfold; the two-level factorization cannot mirror that, so the scan
    // decides (identical verdict by construction).
    for (const Program* prog : {&q1.program, &q2.program}) {
      for (SymbolId idb : prog->IdbPredicates()) {
        if (mediated.count(idb) > 0 || sources.count(idb) > 0) {
          return ScanFallback(q1, q2, views, interner, options);
        }
      }
    }

    RELCONT_ASSIGN_OR_RETURN(
        UnionQuery t1,
        UnfoldToUnion(q1.program, q1.goal, interner, options.unfold));
    RELCONT_ASSIGN_OR_RETURN(
        UnionQuery t2,
        UnfoldToUnion(q2.program, q2.goal, interner, options.unfold));

    std::unordered_map<SymbolId, std::vector<const Rule*>> inv_by_pred;
    for (const Rule& r : p1.rules) {
      if (r.body.size() == 1 && sources.count(r.body[0].predicate) > 0) {
        inv_by_pred[r.head.predicate].push_back(&r);
      }
    }

    for (const Rule& d : t1.disjuncts) {
      LeftTemplate lt;
      lt.rule = d;
      bool answerable = true;
      int64_t width = 1;
      for (const Atom& a : d.body) {
        LeftPosition pos;
        pos.goal = a;
        auto it = inv_by_pred.find(a.predicate);
        if (it != inv_by_pred.end()) {
          for (const Rule* r : it->second) {
            pos.options.push_back(RenameApart(*r, interner));
          }
        }
        if (pos.options.empty()) {
          // A mediated atom no source covers: the whole template is
          // unanswerable (PlanToUnion drops these disjuncts).
          answerable = false;
          break;
        }
        width = SatMul(width, static_cast<int64_t>(pos.options.size()));
        lt.positions.push_back(std::move(pos));
      }
      if (!answerable) continue;
      // Deterministic (single-option) positions first: the DFS then
      // resolves them once as a shared prefix instead of re-unifying them
      // under every combination of the real choice points. Stable, so the
      // enumeration order — and with it the reported witness — stays
      // deterministic.
      std::stable_partition(
          lt.positions.begin(), lt.positions.end(),
          [](const LeftPosition& p) { return p.options.size() <= 1; });
      for (const LeftPosition& p : lt.positions) {
        if (p.options.size() > 1) ++lt.num_branching;
      }
      ComputeComponents(&lt);
      estimate = SatAdd(estimate, width);
      left.push_back(std::move(lt));
    }

    if (options.strategy == ContainmentStrategy::kAuto &&
        estimate < options.cegar.auto_width_threshold) {
      return ScanFallback(q1, q2, views, interner, options);
    }

    for (const Rule& d : t2.disjuncts) {
      RightTemplate rt;
      rt.rule = RenameApart(d, interner);
      bool feasible = true;
      for (const Atom& a : rt.rule.body) {
        std::vector<Rule> opts;
        auto it = inv_by_pred.find(a.predicate);
        if (it != inv_by_pred.end()) {
          for (const Rule* r : it->second) {
            opts.push_back(RenameApart(*r, interner));
          }
        }
        if (opts.empty()) {
          feasible = false;
          break;
        }
        rt.options.push_back(std::move(opts));
      }
      if (!feasible) continue;
      for (SymbolId v : rt.rule.Variables()) right_vars.insert(v);
      for (const auto& opts : rt.options) {
        for (const Rule& r : opts) {
          for (SymbolId v : r.Variables()) right_vars.insert(v);
        }
      }
      right.push_back(std::move(rt));
    }
  }

  RELCONT_TRACE_SPAN("cegar_search");
  CegarSearch search(std::move(left), std::move(right), std::move(right_vars),
                     options.cegar, stats);
  RELCONT_ASSIGN_OR_RETURN(bool found, search.Run());
  RelativeContainmentResult out;
  out.contained = !found;
  if (found) out.witness = search.witness();
  // plan1/plan2 stay empty by design: the engine never materializes them.
  return out;
}

}  // namespace

Result<RelativeContainmentResult> CegarRelativelyContained(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const RelativeContainmentOptions& options,
    CegarStats* stats) {
  CegarStats local;
  Result<RelativeContainmentResult> out =
      CegarImpl(q1, q2, views, interner, options, &local);
  // Publish on EVERY exit path — a budget-tripped run still accounts for
  // the proposals and checks it performed (the budget-trip property test
  // pins trace deltas against these numbers).
  if (stats != nullptr) *stats = local;
  RELCONT_TRACE_COUNT(kCegarIterations, local.iterations);
  RELCONT_TRACE_COUNT(kCegarBlockingClauses, local.blocking_clauses);
  RELCONT_TRACE_COUNT(kCegarProposals, local.proposals);
  CegarGlobalCounters& g = GlobalCegarCounters();
  g.iterations.fetch_add(local.iterations, std::memory_order_relaxed);
  g.blocking_clauses.fetch_add(local.blocking_clauses,
                               std::memory_order_relaxed);
  g.proposals.fetch_add(local.proposals, std::memory_order_relaxed);
  return out;
}

}  // namespace relcont
