#ifndef RELCONT_RELCONT_BINDING_CONTAINMENT_H_
#define RELCONT_RELCONT_BINDING_CONTAINMENT_H_

#include "binding/dom_containment.h"
#include "binding/dom_plan.h"
#include "relcont/relative_containment.h"

namespace relcont {

/// Relative containment under binding-pattern restrictions (Section 4):
/// Q1 ⊑_{V,B} Q2 iff for every source instance the REACHABLE certain
/// answers of Q1 are a subset of those of Q2 (Definition 4.5).
///
/// By Theorem 4.1 this reduces to  P1^exp ⊑ Q2 , where P1 is Q1's
/// executable maximally-contained plan — a recursive program even for
/// conjunctive Q1, yet the containment is decidable (Theorem 4.2) because
/// the recursion runs only through the unary `dom` accumulator; see
/// binding/dom_containment.h for the decision procedure.
struct BindingRelativeResult {
  bool contained = true;
  /// When !contained: an expansion of Q1's executable plan (a CQ over the
  /// mediated schema) that Q2 does not contain; freezing it produces a
  /// counterexample source instance.
  std::optional<Rule> counterexample;
  /// Decision-procedure statistics.
  int tree_options = 0;
  int64_t cores_checked = 0;
};

/// Decides Q1 ⊑_{V,B} Q2. Q1 may be recursive in principle but must stay
/// within the decidable shape (conjunctive/nonrecursive in this
/// implementation); Q2 must be nonrecursive; everything comparison-free.
/// Definition 4.5 requires the constants of Q1 ∪ V to be a subset of those
/// of Q2 ∪ V; violations are reported as kInvalidArgument.
Result<BindingRelativeResult> RelativelyContainedWithBindingPatterns(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    const BindingPatterns& patterns, Interner* interner,
    const DomContainmentOptions& options = {});

}  // namespace relcont

#endif  // RELCONT_RELCONT_BINDING_CONTAINMENT_H_
