#ifndef RELCONT_RELCONT_CWA_H_
#define RELCONT_RELCONT_CWA_H_

#include <optional>

#include "relcont/certain_answers.h"
#include "relcont/relative_containment.h"

namespace relcont {

/// Relative containment under the CLOSED-world assumption (complete
/// sources, Section 6). The paper leaves decidability open — even finding
/// certain answers is co-NP-hard in the size of the instances [AD98] — so
/// this module provides the two semi-procedures that are available:
///
///  * a REFUTER that searches bounded source instances for a
///    counterexample (a certain answer of Q1 that is not one of Q2);
///    finding one definitively shows Q1 ⋢_V^cwa Q2 (this is how the
///    paper's Example 5 separates CWA from OWA);
///  * the trivial sufficient condition: OWA relative containment together
///    with classical containment implies CWA containment... is FALSE in
///    general (Example 5 is exactly the counterexample), so the only
///    sound positive certificate offered is classical containment itself.

struct CwaRefuterOptions {
  /// Maximum number of source facts in candidate instances.
  int max_instance_facts = 2;
  /// Values used to populate candidate instances.
  int domain_size = 2;
  /// Forwarded to the brute-force certain-answer oracle.
  BruteForceOptions brute_force;
};

struct CwaRefutation {
  /// A source instance on which certain(Q1) ⊄ certain(Q2).
  Database instance;
  /// A certain answer of Q1 missing from Q2's certain answers.
  Tuple answer;
};

/// Searches for a closed-world counterexample to Q1 ⊑_V Q2. All views in
/// `views` are treated as COMPLETE regardless of their flags. Returns a
/// refutation if one exists within the bounds, nullopt if the bounded
/// search was exhausted without finding one (inconclusive — containment
/// may still fail on larger instances).
Result<std::optional<CwaRefutation>> RefuteCwaContainment(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    Interner* interner, const CwaRefuterOptions& options = {});

}  // namespace relcont

#endif  // RELCONT_RELCONT_CWA_H_
