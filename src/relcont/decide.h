#ifndef RELCONT_RELCONT_DECIDE_H_
#define RELCONT_RELCONT_DECIDE_H_

#include "binding/adornment.h"
#include "relcont/binding_containment.h"
#include "relcont/relative_containment.h"

namespace relcont {

/// The front door: decides Q1 ⊑_V Q2 by dispatching to the right regime of
/// the paper automatically.
///
///   * binding patterns present         -> Section 4 (Theorems 4.1/4.2)
///   * any comparison predicates        -> Section 5 (Theorem 5.2 when Q1
///                                         is comparison-free, else the
///                                         Theorem 5.1 plan route)
///   * a recursive query                -> Theorem 3.2
///   * otherwise                        -> Section 3 (Theorem 3.1)
///
/// Binding patterns cannot currently be combined with comparison
/// predicates (neither does the paper combine them); that mix reports
/// kUnsupported.
struct DecideOptions {
  UnfoldOptions unfold;
  /// Forwarded to the Section 4 decision procedure.
  DomContainmentOptions dom;
  /// Forwarded to the Theorem 3.2 recursive-Q1 direction.
  int max_rule_applications = 12;
};

struct Decision {
  bool contained = false;
  /// Which regime decided (for diagnostics): "section3", "theorem32",
  /// "section4", "theorem51", "theorem52".
  const char* regime = "";
  /// A witness when not contained and the regime produces one: a plan
  /// disjunct (section3/theorem51) or a counterexample expansion
  /// (section4).
  std::optional<Rule> witness;
};

Result<Decision> DecideRelativeContainment(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    const BindingPatterns& patterns, Interner* interner,
    const DecideOptions& options = {});

}  // namespace relcont

#endif  // RELCONT_RELCONT_DECIDE_H_
