#ifndef RELCONT_RELCONT_DECIDE_H_
#define RELCONT_RELCONT_DECIDE_H_

#include <string_view>

#include "binding/adornment.h"
#include "relcont/binding_containment.h"
#include "relcont/relative_containment.h"

namespace relcont {

/// The front door: decides Q1 ⊑_V Q2 by dispatching to the right regime of
/// the paper automatically.
///
///   * binding patterns present         -> Section 4 (Theorems 4.1/4.2)
///   * any comparison predicates        -> Section 5 (Theorem 5.2 when Q1
///                                         is comparison-free, else the
///                                         Theorem 5.1 plan route)
///   * a recursive query                -> Theorem 3.2
///   * otherwise                        -> Section 3 (Theorem 3.1)
///
/// Binding patterns cannot currently be combined with comparison
/// predicates (neither does the paper combine them); that mix reports
/// kUnsupported.
struct DecideOptions {
  UnfoldOptions unfold;
  /// Forwarded to the Section 4 decision procedure.
  DomContainmentOptions dom;
  /// Forwarded to the Theorem 3.2 recursive-Q1 direction.
  int max_rule_applications = 12;

  // --- cooperative budget (see common/budget.h) ---------------------------
  // These bound HOW LONG the decision may run, never WHAT it answers: when
  // a bound trips the call returns kBoundReached instead of a verdict.
  // When a WorkBudget is already installed on the calling thread (the
  // service does this per request), that budget governs and these two
  // fields are ignored; they exist so direct library callers get the same
  // behavior without touching budget machinery.

  /// Wall-clock deadline for the whole decision in milliseconds; 0 = none.
  int64_t timeout_ms = 0;
  /// Total step budget (search nodes, linearizations, expansions, derived
  /// facts) for the whole decision; 0 = unlimited.
  int64_t max_steps = 0;
  /// Fan-out width for the per-disjunct containment scans of the
  /// section3/theorem51/theorem52 regimes; <= 1 = serial. Parallelism
  /// changes the verdict never and the reported witness sometimes.
  int parallel_workers = 1;
  /// Engine for the section3 regime (the other regimes always scan). The
  /// service front door defaults to kAuto — narrow instances keep the
  /// scan, wide ones get the CEGAR search (relcont/cegar.h). Exposed on
  /// the wire as `strategy=cegar|scan|auto` (docs/SERVICE.md).
  ContainmentStrategy strategy = ContainmentStrategy::kAuto;
};

/// Which part of the paper decided a containment question.
enum class Regime {
  kUnknown = 0,
  kSection3,    ///< Theorem 3.1: nonrecursive, comparison-free.
  kTheorem32,   ///< One recursive query.
  kSection4,    ///< Binding patterns (Theorems 4.1/4.2).
  kTheorem51,   ///< Comparisons on both sides.
  kTheorem52,   ///< Q1 comparison-free, Q2/views with comparisons.
};

/// A short stable name for `regime` ("section3", "theorem32", "section4",
/// "theorem51", "theorem52"; "unknown" for the default value).
std::string_view RegimeName(Regime regime);

/// Parses the names produced by RegimeName; Regime::kUnknown on no match.
Regime ParseRegime(std::string_view name);

struct Decision {
  bool contained = false;
  /// Which regime decided (for diagnostics and service metrics).
  Regime regime = Regime::kUnknown;
  /// A witness when not contained: every regime produces one. For
  /// section3/theorem51 it is a failing plan disjunct over the sources
  /// (theorem51 witnesses carry the comparisons their views guarantee, so
  /// the disjunct genuinely fails on a consistent instance); for
  /// theorem32/theorem52 a failing plan-expansion disjunct; for section4 a
  /// counterexample expansion. Evaluating the witness body (frozen) yields
  /// a source instance where certain(Q1) ⊄ certain(Q2).
  std::optional<Rule> witness;

  std::string_view regime_name() const { return RegimeName(regime); }
};

/// Thread-safety: this call is pure with respect to everything except
/// `interner`, which it mutates (fresh variables, Skolem symbols, frozen
/// constants). Interner is NOT thread-safe, so concurrent callers must not
/// share one — give each thread its own Interner and parse the inputs
/// against it (see service/service.h for the worker-arena pattern).
Result<Decision> DecideRelativeContainment(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    const BindingPatterns& patterns, Interner* interner,
    const DecideOptions& options = {});

}  // namespace relcont

#endif  // RELCONT_RELCONT_DECIDE_H_
