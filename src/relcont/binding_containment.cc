#include "relcont/binding_containment.h"

#include <algorithm>

#include "containment/expansion.h"
#include "trace/trace.h"

namespace relcont {

Result<BindingRelativeResult> RelativelyContainedWithBindingPatterns(
    const GoalQuery& q1, const GoalQuery& q2, const ViewSet& views,
    const BindingPatterns& patterns, Interner* interner,
    const DomContainmentOptions& options) {
  // Definition 4.5's constant discipline: constants(Q1 ∪ V) must be a
  // subset of constants(Q2 ∪ V).
  std::vector<Value> allowed = q2.program.Constants();
  std::vector<Value> view_consts = views.Constants();
  allowed.insert(allowed.end(), view_consts.begin(), view_consts.end());
  for (const Value& c : q1.program.Constants()) {
    if (std::find(allowed.begin(), allowed.end(), c) == allowed.end()) {
      return Status::InvalidArgument(
          "Definition 4.5 requires constants(Q1 ∪ V) ⊆ constants(Q2 ∪ V)");
    }
  }
  if (q2.program.IsRecursive()) {
    return Status::Unsupported(
        "Theorem 4.2 requires the containing query to be nonrecursive");
  }

  ExecutablePlanResult plan;
  Program p1_exp;
  UnionQuery q2_ucq;
  {
    RELCONT_TRACE_SPAN("build_plans");
    RELCONT_ASSIGN_OR_RETURN(
        plan, ExecutablePlan(q1.program, views, patterns, interner));
    RELCONT_ASSIGN_OR_RETURN(
        p1_exp,
        ExpandExecutablePlanForContainment(plan, q1.goal, views, interner));
    RELCONT_ASSIGN_OR_RETURN(
        q2_ucq, UnfoldToUnion(q2.program, q2.goal, interner, options.unfold));
  }

  RELCONT_TRACE_SPAN("containment_check");
  Result<DomContainmentResult> decision =
      DomPlanContainedInUcq(p1_exp, q1.goal, plan.dom_predicate, q2_ucq,
                            interner, options);
  if (decision.ok()) {
    BindingRelativeResult out;
    out.contained = decision->contained;
    out.counterexample = decision->counterexample;
    out.tree_options = decision->tree_options;
    out.cores_checked = decision->cores_checked;
    return out;
  }
  if (decision.status().code() != StatusCode::kUnsupported) {
    return decision.status();
  }
  // Outside the dom shape (e.g. Q1 itself recursive): fall back to the
  // bounded expansion search — definite on counterexamples, kBoundReached
  // otherwise.
  ExpansionOptions bounds;
  bounds.max_rule_applications = 12;
  RELCONT_ASSIGN_OR_RETURN(
      bool contained,
      DatalogContainedInUcqBounded(p1_exp, q1.goal, q2_ucq, interner,
                                   bounds));
  BindingRelativeResult out;
  out.contained = contained;
  return out;
}

}  // namespace relcont
