// The containment-decision server: speaks the line-delimited protocol of
// docs/SERVICE.md over stdin/stdout. Each line is one request; responses
// are line-delimited too, so the binary composes with pipes, netcat-style
// wrappers, and test harnesses.
//
//   $ ./build/examples/relcont_serve
//   > CATALOG cars VIEW redcars(C, M, Y) :- cardesc(C, M, red, Y).
//   OK catalog cars v1 views=1 patterns=0
//   > DEFINE q1 q1(C) :- cardesc(C, M, Col, Y).
//   OK query q1 rules=1
//   > DEFINE q2 q2(C) :- cardesc(C, M, red, Y).
//   OK query q2 rules=1
//   > CONTAINED? q2 q1 @cars
//   YES section3 MISS 184us
//   > CONTAINED? q2 q1 @cars
//   YES section3 HIT 2us
//
// Flags:
//   --batch        suppress the prompt (for piped input)
//   --threads N    fan-out width for BATCH BEGIN/END groups (default 4)
//   --cache N      decision-cache capacity in entries (default 4096)
//   --trace        trace every request into the METRICS aggregates
//   --slow-log N   keep the N worst traced requests for METRICS (default 4)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "service/protocol.h"

int main(int argc, char** argv) {
  bool interactive = true;
  int threads = 4;
  relcont::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batch") == 0) {
      interactive = false;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      config.cache_capacity = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      config.trace_requests = true;
    } else if (std::strcmp(argv[i], "--slow-log") == 0 && i + 1 < argc) {
      config.slow_log_capacity = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: relcont_serve [--batch] [--threads N] [--cache N] "
                   "[--trace] [--slow-log N]\n");
      return 2;
    }
  }
  relcont::ContainmentService service(config);
  relcont::ServerSession session(&service, threads);
  if (interactive) {
    std::printf("relcont serve — HELP for the protocol\n> ");
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    std::string response = session.HandleLine(line);
    std::fputs(response.c_str(), stdout);
    std::fflush(stdout);
    if (interactive) std::printf("> ");
  }
  return 0;
}
