// The containment-decision server. Two transports share one service:
//
//   * stdin/stdout (default): each line is one request of the protocol in
//     docs/SERVICE.md, so the binary composes with pipes and harnesses.
//   * TCP (--port N): a listener that runs one protocol session per
//     connection and additionally answers HTTP GETs — /metrics (Prometheus
//     text exposition), /statusz (JSON status), /healthz, /buildz. SIGINT
//     shuts it down immediately; SIGTERM starts a graceful drain —
//     /healthz answers 503 "draining" for --drain-grace-ms so a load
//     balancer can deregister the node, then the listener closes and live
//     sessions are drained before exit.
//
//   $ ./build/examples/relcont_serve
//   > CATALOG cars VIEW redcars(C, M, Y) :- cardesc(C, M, red, Y).
//   OK catalog cars v1 views=1 patterns=0
//   > DEFINE q1 q1(C) :- cardesc(C, M, Col, Y).
//   OK query q1 rules=1
//   > CONTAINED? q1 q1 @cars
//   YES section3 MISS 184us
//
//   $ ./build/examples/relcont_serve --port 8080 &
//   $ curl -s localhost:8080/metrics | head
//
// Flags:
//   --batch            suppress the prompt (for piped input)
//   --threads N        fan-out width for BATCH BEGIN/END groups (default 4)
//   --cache N          decision-cache capacity in entries (default 4096)
//   --trace            trace every request into the METRICS aggregates
//   --slow-log N       keep the N worst traced requests (default 4)
//   --port N           serve TCP + HTTP on port N instead of stdin/stdout
//   --access-log FILE  append one JSONL event per decision to FILE
//   --log-sample R     log every R-th decision only (default 1 = all)
//   --default-timeout-ms N  deadline for requests without timeout_ms=
//                      (default 0 = unbounded); expired requests answer
//                      ERR BoundReached, not a verdict
//   --workers N        parallel scan width for requests without workers=
//                      (default 1 = serial)
//   --window-secs N    trailing window for the long latency percentiles in
//                      METRICS / STATUSZ / /statusz (default 60, max 126)
//   --drain-grace-ms N how long SIGTERM keeps /healthz at 503 before the
//                      listener closes (default 0 = immediate)
//   --flight-ring N    flight-recorder wide-event ring slots, rounded up
//                      to a power of two (default 1024)
//   --flight-arena-kb N  retention-arena byte cap for tail-sampled span
//                      trees, in KB (default 512)
//   --crash-dump FILE  write the crash black box (ring wide events + the
//                      last statusz snapshot) to FILE on SIGSEGV/SIGABRT
//                      (default: stderr; the handler is always installed)

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "obs/access_log.h"
#include "obs/flight.h"
#include "obs/server.h"
#include "obs/window.h"
#include "service/protocol.h"

namespace {

relcont::obs::ObsServer* g_server = nullptr;

void HandleSignal(int signum) {
  // Async-signal-safe: both entry points are atomic stores (plus a
  // shutdown(2) for the immediate path). SIGTERM drains gracefully so a
  // router sees /healthz flip before the port goes away; SIGINT stops now.
  if (g_server == nullptr) return;
  if (signum == SIGTERM) {
    g_server->RequestDrain();
  } else {
    g_server->Shutdown();
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: relcont_serve [--batch] [--threads N] [--cache N] "
               "[--trace] [--slow-log N]\n"
               "                     [--port N] [--access-log FILE] "
               "[--log-sample R]\n"
               "                     [--default-timeout-ms N] [--workers N] "
               "[--window-secs N]\n"
               "                     [--drain-grace-ms N] [--flight-ring N] "
               "[--flight-arena-kb N]\n"
               "                     [--crash-dump FILE]\n");
  return 2;
}

/// Strict positive-integer flag parsing: the whole token must be digits
/// and the value must be in [min, max]. atoi-style garbage ("4x", "", "-2")
/// is a usage error, not a silent zero.
bool ParseIntFlag(const char* flag, const char* text, long long min,
                  long long max, long long* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  errno = 0;
  long long value = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || value < min ||
      value > max) {
    std::fprintf(stderr, "relcont_serve: %s needs an integer in [%lld, %lld], "
                 "got '%s'\n", flag, min, max, text);
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool interactive = true;
  long long threads = 4;
  long long port = -1;  // -1 = stdio mode
  long long drain_grace_ms = 0;
  std::string access_log_path;
  std::string crash_dump_path;
  long long log_sample = 1;
  relcont::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--batch") == 0) {
      interactive = false;
    } else if (std::strcmp(arg, "--trace") == 0) {
      config.trace_requests = true;
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (!ParseIntFlag(arg, value, 1, 1024, &threads)) return Usage();
      ++i;
    } else if (std::strcmp(arg, "--cache") == 0) {
      long long cache = 0;
      if (!ParseIntFlag(arg, value, 1, 1LL << 30, &cache)) return Usage();
      config.cache_capacity = static_cast<size_t>(cache);
      ++i;
    } else if (std::strcmp(arg, "--slow-log") == 0) {
      long long slow = 0;
      if (!ParseIntFlag(arg, value, 1, 1LL << 20, &slow)) return Usage();
      config.slow_log_capacity = static_cast<size_t>(slow);
      ++i;
    } else if (std::strcmp(arg, "--port") == 0) {
      if (!ParseIntFlag(arg, value, 1, 65535, &port)) return Usage();
      ++i;
    } else if (std::strcmp(arg, "--access-log") == 0) {
      if (value == nullptr || *value == '\0') return Usage();
      access_log_path = value;
      ++i;
    } else if (std::strcmp(arg, "--log-sample") == 0) {
      if (!ParseIntFlag(arg, value, 1, 1LL << 30, &log_sample)) return Usage();
      ++i;
    } else if (std::strcmp(arg, "--default-timeout-ms") == 0) {
      long long timeout = 0;
      if (!ParseIntFlag(arg, value, 1, 1LL << 40, &timeout)) return Usage();
      config.default_timeout_ms = timeout;
      ++i;
    } else if (std::strcmp(arg, "--workers") == 0) {
      long long workers = 0;
      if (!ParseIntFlag(arg, value, 1, 1024, &workers)) return Usage();
      config.default_parallel_workers = static_cast<int>(workers);
      ++i;
    } else if (std::strcmp(arg, "--window-secs") == 0) {
      long long window = 0;
      if (!ParseIntFlag(arg, value, 1, relcont::obs::WindowRing::kMaxWindowSecs,
                        &window)) {
        return Usage();
      }
      config.window_secs = static_cast<int>(window);
      ++i;
    } else if (std::strcmp(arg, "--drain-grace-ms") == 0) {
      if (!ParseIntFlag(arg, value, 0, 1LL << 30, &drain_grace_ms)) {
        return Usage();
      }
      ++i;
    } else if (std::strcmp(arg, "--flight-ring") == 0) {
      long long ring = 0;
      if (!ParseIntFlag(arg, value, 1, 1LL << 24, &ring)) return Usage();
      config.flight_ring_capacity = static_cast<size_t>(ring);
      ++i;
    } else if (std::strcmp(arg, "--flight-arena-kb") == 0) {
      long long arena_kb = 0;
      if (!ParseIntFlag(arg, value, 1, 1LL << 22, &arena_kb)) return Usage();
      config.flight_arena_kb = static_cast<size_t>(arena_kb);
      ++i;
    } else if (std::strcmp(arg, "--crash-dump") == 0) {
      if (value == nullptr || *value == '\0') return Usage();
      crash_dump_path = value;
      ++i;
    } else {
      return Usage();
    }
  }

  relcont::ContainmentService service(config);
  // The crash black box covers both transports: on SIGSEGV/SIGABRT the
  // handler dumps the flight ring and the last statusz snapshot before
  // the default disposition re-terminates the process.
  relcont::obs::InstallCrashHandler(
      &service.metrics().flight(),
      crash_dump_path.empty() ? nullptr : crash_dump_path.c_str());

  std::unique_ptr<relcont::obs::AccessLog> access_log;
  if (!access_log_path.empty()) {
    relcont::obs::AccessLogOptions log_options;
    log_options.path = access_log_path;
    log_options.sample = static_cast<uint64_t>(log_sample);
    auto opened = relcont::obs::AccessLog::Open(std::move(log_options));
    if (!opened.ok()) {
      std::fprintf(stderr, "relcont_serve: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    access_log = std::move(*opened);
  }

  if (port >= 0) {
    relcont::obs::ServerOptions server_options;
    server_options.port = static_cast<int>(port);
    server_options.batch_threads = static_cast<int>(threads);
    server_options.access_log = access_log.get();
    server_options.drain_grace_ms = static_cast<int>(drain_grace_ms);
    relcont::obs::ObsServer server(&service, server_options);
    relcont::Status status = server.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "relcont_serve: %s\n", status.ToString().c_str());
      return 1;
    }
    g_server = &server;
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    std::fprintf(stderr,
                 "relcont_serve: listening on port %d "
                 "(protocol over TCP; GET /metrics /statusz /requestz "
                 "/healthz /buildz)\n",
                 server.port());
    server.Serve();
    g_server = nullptr;
    std::fprintf(stderr, "relcont_serve: shut down\n");
    return 0;
  }

  relcont::ServerSession session(&service, static_cast<int>(threads));
  if (access_log != nullptr) {
    relcont::obs::AccessLog* log = access_log.get();
    session.set_decision_observer(
        [log](const relcont::DecisionRequest& request,
              const relcont::DecisionResponse& response) {
          log->Record(request, response);
        });
  }
  if (interactive) {
    std::printf("relcont serve — HELP for the protocol\n> ");
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    std::string response = session.HandleLine(line);
    std::fputs(response.c_str(), stdout);
    std::fflush(stdout);
    if (interactive) std::printf("> ");
  }
  return 0;
}
