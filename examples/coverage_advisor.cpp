// The use case from the paper's introduction: "familiarize a user with the
// coverage and limitations of a large set of available data sources". The
// advisor takes a workload of queries and reports, for every pair, whether
// one is contained in the other classically or only relative to the
// current sources — and how the answer changes when a source goes offline.

#include <cstdio>
#include <string>
#include <vector>

#include "containment/cq_containment.h"
#include "datalog/parser.h"
#include "relcont/relative_containment.h"

using namespace relcont;

namespace {

struct NamedQuery {
  std::string name;
  GoalQuery query;
};

void Report(const std::vector<NamedQuery>& workload, const ViewSet& views,
            Interner* interner) {
  for (size_t i = 0; i < workload.size(); ++i) {
    for (size_t j = 0; j < workload.size(); ++j) {
      if (i == j) continue;
      const NamedQuery& a = workload[i];
      const NamedQuery& b = workload[j];
      if (a.query.program.rules[0].head.arity() !=
          b.query.program.rules[0].head.arity()) {
        continue;
      }
      Result<bool> classical = CqContained(a.query.program.rules[0],
                                           b.query.program.rules[0]);
      Result<RelativeContainmentResult> relative =
          RelativelyContained(a.query, b.query, views, interner);
      if (!classical.ok() || !relative.ok()) continue;
      if (relative->contained && *classical) {
        std::printf("  %-12s <= %-12s (always)\n", a.name.c_str(),
                    b.name.c_str());
      } else if (relative->contained) {
        std::printf("  %-12s <= %-12s (only for the current sources!)\n",
                    a.name.c_str(), b.name.c_str());
      }
    }
  }
}

}  // namespace

int main() {
  Interner interner;

  // A travel mediated schema with partially overlapping sources.
  ViewSet views = *ParseViews(
      "eu_flights(F, From, To) :- flight(F, From, To, europe).\n"
      "all_hotels(H, City) :- hotel(H, City).\n"
      "packages(F, H, City) :- flight(F, A, City, R), hotel(H, City).\n",
      &interner);

  std::vector<NamedQuery> workload;
  auto add = [&](const char* name, const char* text, const char* goal) {
    workload.push_back(
        {name,
         GoalQuery{*ParseProgram(text, &interner), interner.Intern(goal)}});
  };
  add("trips", "t(F, H) :- flight(F, A, C, R), hotel(H, C).", "t");
  add("eu_trips",
      "te(F, H) :- flight(F, A, C, europe), hotel(H, C).", "te");
  add("flights", "fl(F) :- flight(F, A, C, R).", "fl");
  add("eu_only", "fe(F) :- flight(F, A, C, europe).", "fe");

  std::printf("Coverage report with ALL sources online:\n");
  Report(workload, views, &interner);

  std::printf("\nSources each query actually depends on:\n");
  for (const NamedQuery& nq : workload) {
    Result<std::set<SymbolId>> relevant =
        RelevantSources(nq.query, views, &interner);
    if (!relevant.ok()) continue;
    std::printf("  %-12s:", nq.name.c_str());
    for (SymbolId s : *relevant) {
      std::printf(" %s", interner.NameOf(s).c_str());
    }
    std::printf("\n");
  }

  // Take the packages source offline: the only remaining flight source is
  // European, so "flights" collapses into "eu_only".
  ViewSet degraded = *ParseViews(
      "eu_flights(F, From, To) :- flight(F, From, To, europe).\n"
      "all_hotels(H, City) :- hotel(H, City).\n",
      &interner);
  std::printf("\nCoverage report with the `packages` source OFFLINE:\n");
  Report(workload, degraded, &interner);

  std::printf(
      "\nReading the report: a containment marked \"only for the current\n"
      "sources\" warns the user that two queries which differ in general\n"
      "happen to coincide today — adding a source can change their "
      "answers.\n");
  return 0;
}
