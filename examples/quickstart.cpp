// Quickstart: define a mediated schema, describe sources as views over it,
// compute certain answers, and decide relative containment.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "datalog/parser.h"
#include "relcont/certain_answers.h"
#include "relcont/relative_containment.h"

using namespace relcont;

int main() {
  Interner interner;

  // The mediated schema has two (virtual) relations:
  //   employee(Name, Dept)     works_on(Name, Project)
  // Two autonomous sources are described as views over it (local-as-view):
  ViewSet views = *ParseViews(
      "hr_directory(Name, Dept) :- employee(Name, Dept).\n"
      "project_list(Name, Project) :- works_on(Name, Project).\n",
      &interner);

  // A user query over the mediated schema: who works on what, with dept.
  Program q = *ParseProgram(
      "q(Name, Dept, Project) :- employee(Name, Dept), "
      "works_on(Name, Project).",
      &interner);
  SymbolId goal = interner.Lookup("q");

  // Current source contents.
  Database instance = *ParseDatabase(
      "hr_directory(ada, research).\n"
      "hr_directory(grace, systems).\n"
      "project_list(ada, engine).\n",
      &interner);

  // Certain answers: tuples guaranteed in EVERY database consistent with
  // the sources (open-world semantics, Definition 2.1 of the paper).
  std::vector<Tuple> answers =
      *CertainAnswers(q, goal, views, instance, &interner);
  std::printf("certain answers to q:\n");
  for (const Tuple& t : answers) {
    std::printf("  (%s, %s, %s)\n", t[0].ToString(interner).c_str(),
                t[1].ToString(interner).c_str(),
                t[2].ToString(interner).c_str());
  }

  // Relative containment (the paper's contribution): does one query always
  // return a subset of another's certain answers, GIVEN these sources?
  GoalQuery q_all{*ParseProgram(
                      "qa(Name) :- works_on(Name, Project).", &interner),
                  interner.Lookup("qa")};
  GoalQuery q_emp{*ParseProgram(
                      "qe(Name) :- employee(Name, Dept), "
                      "works_on(Name, Project).",
                      &interner),
                  interner.Lookup("qe")};
  RelativeContainmentResult r =
      *RelativelyContained(q_all, q_emp, views, &interner);
  std::printf("\nq_all relatively contained in q_emp: %s\n",
              r.contained ? "yes" : "no");
  if (!r.contained && r.witness.has_value()) {
    std::printf("witness source pattern: %s\n",
                r.witness->ToString(interner).c_str());
  }
  RelativeContainmentResult back =
      *RelativelyContained(q_emp, q_all, views, &interner);
  std::printf("q_emp relatively contained in q_all: %s\n",
              back.contained ? "yes" : "no");
  return 0;
}
