// Reading a decision trace: run one containment question through the
// service with tracing on, then mine the recorded span tree the way an
// operator would — where did the time go, how hard did the homomorphism
// search work, and what would the Chrome/Perfetto export look like?
// (Span taxonomy and counter glossary: docs/OBSERVABILITY.md.)

#include <cstdio>
#include <string>

#include "service/service.h"
#include "trace/trace.h"

using namespace relcont;

int main() {
  ContainmentService service;

  // The car catalog of the paper's Example 1: three sources over a
  // mediated cardesc relation.
  service.catalogs().Register(
      "cars",
      "redcars(C, M, Y) :- cardesc(C, M, red, Y).\n"
      "allcars(C, M, Col) :- cardesc(C, M, Col, Y).\n"
      "modelyears(M, Y) :- cardesc(C, M, Col, Y).\n",
      {});

  DecisionRequest request;
  request.q1_text = "q1(C) :- cardesc(C, M, red, Y).";
  request.q2_text = "q2(C) :- cardesc(C, M, Col, Y).";
  request.catalog = "cars";
  request.bypass_cache = true;   // trace an actual decision, not a cache hit
  request.collect_trace = true;  // ask for the span tree back

  WorkerContext ctx;
  DecisionResponse response = service.Decide(request, &ctx);
  if (!response.status.ok()) {
    std::printf("error: %s\n", response.status.ToString().c_str());
    return 1;
  }
  std::printf("Q1 relatively contained in Q2: %s (regime %.*s, %llu us)\n\n",
              response.contained ? "yes" : "no",
              static_cast<int>(RegimeName(response.regime).size()),
              RegimeName(response.regime).data(),
              static_cast<unsigned long long>(response.latency_micros));

  const trace::TraceContext& trace = *response.trace;
  std::printf("The decision's span tree (what EXPLAIN prints):\n%s\n",
              trace.ToText().c_str());
  if (!trace::kCompiledIn) {
    std::printf("(trace hooks compiled out — rebuild with RELCONT_TRACE=ON "
                "for real data)\n");
    return 0;
  }

  // 1. Where did the time go? Compare the two top phases under "decide".
  const trace::SpanNode* dominant = nullptr;
  for (const trace::SpanNode& s : trace.spans()) {
    if (s.depth != 2) continue;  // decide -> regime_* -> phases
    if (dominant == nullptr || s.duration_ns() > dominant->duration_ns()) {
      dominant = &s;
    }
  }
  uint64_t total_ns = trace.root_duration_ns();
  if (dominant != nullptr && total_ns > 0) {
    std::printf("dominant phase: %s (%.1f%% of the decision)\n",
                dominant->name,
                100.0 * static_cast<double>(dominant->duration_ns()) /
                    static_cast<double>(total_ns));
  }

  // 2. How hard did the homomorphism search work? The counters tell the
  // story the timings cannot: effort per containment mapping.
  uint64_t calls = trace.TotalCount(trace::Counter::kHomMappingCalls);
  uint64_t tried = trace.TotalCount(trace::Counter::kHomCandidatesTried);
  uint64_t backtracks = trace.TotalCount(trace::Counter::kHomBacktracks);
  std::printf("homomorphism search: %llu calls, %llu candidates, "
              "%llu backtracks\n",
              static_cast<unsigned long long>(calls),
              static_cast<unsigned long long>(tried),
              static_cast<unsigned long long>(backtracks));

  // 3. Plan shape: how many rewriting disjuncts survived.
  std::printf("plan: %llu disjuncts kept, %llu dropped\n",
              static_cast<unsigned long long>(
                  trace.TotalCount(trace::Counter::kPlanDisjunctsKept)),
              static_cast<unsigned long long>(
                  trace.TotalCount(trace::Counter::kPlanDisjunctsDropped)));

  // 4. The same trace as Chrome trace_event JSON — save the output of
  // EXPLAIN JSON (or this string) to a file and load it in
  // chrome://tracing or https://ui.perfetto.dev.
  std::string json = trace.ToChromeJson();
  std::printf("\nChrome trace_event export (%zu bytes): %.60s...\n",
              json.size(), json.c_str());
  return 0;
}
