// Section 4 end to end: sources with access-pattern restrictions (the
// paper's Amazon motivation — prices only by ISBN), the recursive
// executable plan, reachable certain answers, and relative containment
// under binding patterns, including a machine-found counterexample.

#include <cstdio>

#include "binding/dom_plan.h"
#include "datalog/parser.h"
#include "relcont/binding_containment.h"

using namespace relcont;

int main() {
  Interner interner;

  // Mediated schema: book(ISBN, Title), price(ISBN, Price).
  ViewSet views = *ParseViews(
      "catalog(I, T) :- book(I, T).\n"
      "pricelookup(I, P) :- price(I, P).\n",
      &interner);
  // pricelookup demands the ISBN as input: adornment bf.
  BindingPatterns patterns;
  patterns.Set(interner.Lookup("pricelookup"), *Adornment::Parse("bf"));

  Program query = *ParseProgram(
      "q(T, P) :- book(I, T), price(I, P).", &interner);
  SymbolId goal = interner.Lookup("q");

  std::printf("Executable maximally-contained plan (note the recursive dom "
              "accumulator):\n");
  ExecutablePlanResult plan =
      *ExecutablePlan(query, views, patterns, &interner);
  std::printf("%s\n", plan.program.ToString(interner).c_str());

  Database instance = *ParseDatabase(
      "catalog(i1, 'dune').\n"
      "catalog(i2, 'hyperion').\n"
      "pricelookup(i1, 10).\n"
      "pricelookup(i2, 12).\n"
      "pricelookup(i9, 99).\n",  // i9 is not catalogued: unreachable
      &interner);
  std::vector<Tuple> answers = *ReachableCertainAnswers(
      query, goal, views, patterns, instance, &interner);
  std::printf("Reachable certain answers (i9's price cannot be obtained):\n");
  for (const Tuple& t : answers) {
    std::printf("  q(%s, %s)\n", t[0].ToString(interner).c_str(),
                t[1].ToString(interner).c_str());
  }

  // Relative containment under binding patterns (Theorems 4.1/4.2).
  GoalQuery q_price{*ParseProgram("qa(P) :- price(I, P).", &interner),
                    interner.Lookup("qa")};
  GoalQuery q_catalogued{
      *ParseProgram("qb(P) :- book(I, T), price(I, P).", &interner),
      interner.Lookup("qb")};
  BindingRelativeResult r = *RelativelyContainedWithBindingPatterns(
      q_price, q_catalogued, views, patterns, &interner);
  std::printf(
      "\n\"all retrievable prices\" relatively contained in \"prices of\n"
      "catalogued books\": %s\n",
      r.contained ? "yes" : "no");
  if (!r.contained && r.counterexample.has_value()) {
    std::printf(
        "counterexample expansion (a price probed with a value that is not\n"
        "a catalogued ISBN — the untyped dom accumulator admits titles and\n"
        "price values as probe keys too):\n  %s\n",
        r.counterexample->ToString(interner).c_str());
  }

  // Every reachable probe key is a catalogued ISBN, a catalogued title, or
  // the output of an earlier lookup; the three-disjunct union covers them.
  GoalQuery q_cover{*ParseProgram(
                        "qc(P) :- book(I, T), price(I, P).\n"
                        "qc(P) :- book(I, T), price(T, P).\n"
                        "qc(P) :- price(X, Y), price(Y, P).\n",
                        &interner),
                    interner.Lookup("qc")};
  BindingRelativeResult r2 = *RelativelyContainedWithBindingPatterns(
      q_price, q_cover, views, patterns, &interner);
  std::printf(
      "...but contained in the union {ISBN probe, title probe, chained\n"
      "probe}: %s\n"
      "(%d tree profile types, %lld core checks — Theorem 4.2's decision\n"
      "procedure over the recursive plan)\n",
      r2.contained ? "yes" : "no", r2.tree_options,
      static_cast<long long>(r2.cores_checked));
  return 0;
}
