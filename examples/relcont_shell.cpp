// An interactive shell (also scriptable via stdin) for exploring a data
// integration system: declare views, binding patterns, queries and source
// instances, then ask for certain answers and relative containment.
//
//   $ ./build/examples/relcont_shell
//   > view redcars(C, M, Y) :- cardesc(C, M, red, Y).
//   > query q1(C) :- cardesc(C, M, Col, Y).
//   > query q2(C) :- cardesc(C, M, red, Y).
//   > contained q1 q2
//   yes (relative to the declared sources)
//
// Commands:
//   view <rule>            declare a source as a view over the mediated schema
//   pattern <source> <adornment>   set an access pattern (e.g. bf)
//   query <rule(s)>        declare (or extend) a named query
//   fact <atom>.           add a source fact to the current instance
//   certain <query>        certain answers on the current instance
//   reachable <query>      reachable certain answers (uses patterns)
//   contained <q1> <q2>    relative containment (dispatches on patterns)
//   classical <q1> <q2>    traditional containment
//   plan <query>           show the unfolded maximally-contained plan
//   rewrite <q1> <q2>      plan-level containment P1^exp ⊑ Q2
//   explain <query>        certain answers with source provenance
//   relevant <query>       sources the query's answers depend on
//   lossless <query>       are the sources lossless for the query?
//   minimize <query>       show the query's core
//   show                   print the declared system
//   :explain on|off        print the decision trace after each 'contained'
//   help, quit

#include <cstdio>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "binding/dom_plan.h"
#include "containment/comparison_containment.h"
#include "containment/minimize.h"
#include "datalog/parser.h"
#include "relcont/binding_containment.h"
#include "relcont/certain_answers.h"
#include "relcont/decide.h"
#include "relcont/relative_containment.h"
#include "rewriting/comparison_plans.h"
#include "rewriting/losslessness.h"
#include "trace/trace.h"

using namespace relcont;

namespace {

class Shell {
 public:
  int Run() {
    std::string line;
    if (interactive_) std::printf("relcont shell — 'help' for commands\n> ");
    while (std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
      if (interactive_) std::printf("> ");
    }
    return 0;
  }

  explicit Shell(bool interactive) : interactive_(interactive) {}

 private:
  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    std::string rest;
    std::getline(in, rest);
    if (command.empty() || command[0] == '%') return true;
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      Help();
    } else if (command == "view") {
      AddView(rest);
    } else if (command == "pattern") {
      AddPattern(rest);
    } else if (command == "query") {
      AddQuery(rest);
    } else if (command == "fact") {
      AddFact(rest);
    } else if (command == "certain") {
      Certain(rest, /*reachable=*/false);
    } else if (command == "reachable") {
      Certain(rest, /*reachable=*/true);
    } else if (command == "contained") {
      Contained(rest);
    } else if (command == "classical") {
      Classical(rest);
    } else if (command == "plan") {
      ShowPlan(rest);
    } else if (command == "rewrite") {
      Rewrite(rest);
    } else if (command == "explain") {
      Explain(rest);
    } else if (command == "relevant") {
      Relevant(rest);
    } else if (command == "lossless") {
      Lossless(rest);
    } else if (command == "minimize") {
      Minimize(rest);
    } else if (command == "show") {
      Show();
    } else if (command == ":explain") {
      ToggleExplain(rest);
    } else {
      std::printf("unknown command '%s' — try 'help'\n", command.c_str());
    }
    return true;
  }

  void Help() {
    std::printf(
        "  view <rule>           declare a source view\n"
        "  pattern <src> <adr>   set an access pattern (b/f string)\n"
        "  query <rule>          declare or extend a named query\n"
        "  fact <atom>.          add a source fact\n"
        "  certain <query>       certain answers on the instance\n"
        "  reachable <query>     reachable certain answers (patterns)\n"
        "  contained <q1> <q2>   relative containment\n"
        "  classical <q1> <q2>   traditional containment\n"
        "  plan <query>          show the maximally-contained plan\n"
        "  rewrite <q1> <q2>     plan-level containment P1^exp ⊑ Q2\n"
        "  relevant <query>      sources the query's answers depend on\n"
        "  explain <query>       certain answers with source provenance\n"
        "  lossless <query>      are the sources lossless for the query?\n"
        "  minimize <query>      show the query's core\n"
        "  show                  print the declared system\n"
        "  :explain on|off       print the decision trace after each "
        "'contained'\n");
  }

  void AddView(const std::string& text) {
    Result<Rule> rule = ParseRule(text, &interner_);
    if (!rule.ok()) {
      std::printf("parse error: %s\n", rule.status().ToString().c_str());
      return;
    }
    ViewDefinition def;
    def.rule = *rule;
    Status st = views_.Add(std::move(def));
    if (!st.ok()) std::printf("error: %s\n", st.ToString().c_str());
  }

  void AddPattern(const std::string& text) {
    std::istringstream in(text);
    std::string source, adornment;
    in >> source >> adornment;
    SymbolId pred = interner_.Lookup(source);
    if (pred == kInvalidSymbol || views_.Find(pred) == nullptr) {
      std::printf("error: unknown source '%s'\n", source.c_str());
      return;
    }
    Result<Adornment> a = Adornment::Parse(adornment);
    if (!a.ok()) {
      std::printf("error: %s\n", a.status().ToString().c_str());
      return;
    }
    patterns_.Set(pred, *a);
    has_patterns_ = true;
  }

  void AddQuery(const std::string& text) {
    Result<Rule> rule = ParseRule(text, &interner_);
    if (!rule.ok()) {
      std::printf("parse error: %s\n", rule.status().ToString().c_str());
      return;
    }
    std::string name = interner_.NameOf(rule->head.predicate);
    queries_[name].program.rules.push_back(*rule);
    queries_[name].goal = rule->head.predicate;
  }

  void AddFact(const std::string& text) {
    Result<Database> db = ParseDatabase(text, &interner_);
    if (!db.ok()) {
      std::printf("parse error: %s\n", db.status().ToString().c_str());
      return;
    }
    instance_.UnionWith(*db);
  }

  const GoalQuery* FindQuery(const std::string& name) {
    auto it = queries_.find(name);
    if (it == queries_.end()) {
      std::printf("error: unknown query '%s'\n", name.c_str());
      return nullptr;
    }
    return &it->second;
  }

  void Certain(const std::string& text, bool reachable) {
    std::istringstream in(text);
    std::string name;
    in >> name;
    const GoalQuery* q = FindQuery(name);
    if (q == nullptr) return;
    Result<std::vector<Tuple>> answers =
        reachable ? ReachableCertainAnswers(q->program, q->goal, views_,
                                            patterns_, instance_, &interner_)
                  : CertainAnswers(q->program, q->goal, views_, instance_,
                                   &interner_);
    if (!answers.ok()) {
      std::printf("error: %s\n", answers.status().ToString().c_str());
      return;
    }
    if (answers->empty()) std::printf("  (no certain answers)\n");
    for (const Tuple& t : *answers) {
      std::printf("  %s(", name.c_str());
      for (size_t i = 0; i < t.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", t[i].ToString(interner_).c_str());
      }
      std::printf(")\n");
    }
  }

  void ToggleExplain(const std::string& text) {
    std::istringstream in(text);
    std::string mode;
    in >> mode;
    if (mode == "on") {
      explain_ = true;
      if (!trace::kCompiledIn) {
        std::printf(
            "note: trace hooks are compiled out (RELCONT_TRACE=0); traces "
            "will be empty\n");
      }
    } else if (mode == "off") {
      explain_ = false;
    } else {
      std::printf("usage: :explain on|off\n");
      return;
    }
    std::printf("explain %s\n", explain_ ? "on" : "off");
  }

  void Contained(const std::string& text) {
    std::istringstream in(text);
    std::string n1, n2;
    in >> n1 >> n2;
    const GoalQuery* q1 = FindQuery(n1);
    const GoalQuery* q2 = FindQuery(n2);
    if (q1 == nullptr || q2 == nullptr) return;
    trace::TraceContext trace_ctx;
    std::optional<trace::TraceScope> scope;
    if (explain_) scope.emplace(&trace_ctx);
    Result<Decision> d =
        DecideRelativeContainment(*q1, *q2, views_, patterns_, &interner_);
    scope.reset();
    if (!d.ok()) {
      std::printf("error: %s\n", d.status().ToString().c_str());
      return;
    }
    std::printf("%s (relative to the declared sources; decided by %.*s)\n",
                d->contained ? "yes" : "no",
                static_cast<int>(d->regime_name().size()),
                d->regime_name().data());
    if (!d->contained && d->witness.has_value()) {
      std::printf("  witness: %s\n", d->witness->ToString(interner_).c_str());
    }
    if (explain_) std::printf("%s", trace_ctx.ToText().c_str());
  }

  void Classical(const std::string& text) {
    std::istringstream in(text);
    std::string n1, n2;
    in >> n1 >> n2;
    const GoalQuery* q1 = FindQuery(n1);
    const GoalQuery* q2 = FindQuery(n2);
    if (q1 == nullptr || q2 == nullptr) return;
    if (q1->program.rules.size() != 1 || q2->program.rules.size() != 1) {
      std::printf("error: classical check expects single-rule queries\n");
      return;
    }
    Report(CqContainedComplete(q1->program.rules[0], q2->program.rules[0]),
           "on every database");
  }

  void ShowPlan(const std::string& text) {
    std::istringstream in(text);
    std::string name;
    in >> name;
    const GoalQuery* q = FindQuery(name);
    if (q == nullptr) return;
    if (has_patterns_) {
      Result<ExecutablePlanResult> plan =
          ExecutablePlan(q->program, views_, patterns_, &interner_);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
        return;
      }
      std::printf("%s", plan->program.ToString(interner_).c_str());
      return;
    }
    Result<UnionQuery> plan =
        ComparisonAwarePlan(q->program, q->goal, views_, &interner_);
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
      return;
    }
    if (plan->disjuncts.empty()) std::printf("  (empty plan)\n");
    std::printf("%s", plan->ToString(interner_).c_str());
  }

  void Rewrite(const std::string& text) {
    std::istringstream in(text);
    std::string n1, n2;
    in >> n1 >> n2;
    const GoalQuery* q1 = FindQuery(n1);
    const GoalQuery* q2 = FindQuery(n2);
    if (q1 == nullptr || q2 == nullptr) return;
    if (has_patterns_) {
      Result<BindingRelativeResult> r = RelativelyContainedWithBindingPatterns(
          *q1, *q2, views_, patterns_, &interner_);
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
        return;
      }
      std::printf("%s (executable-plan containment under binding "
                  "patterns)\n",
                  r->contained ? "yes" : "no");
      if (!r->contained && r->counterexample.has_value()) {
        std::printf("  witness: %s\n",
                    r->counterexample->ToString(interner_).c_str());
      }
      return;
    }
    Rule witness;
    Result<bool> r = RelativelyContainedViaExpansion(*q1, *q2, views_,
                                                     &interner_, {}, &witness);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    std::printf("%s (plan-level containment P1^exp ⊑ Q2)\n",
                *r ? "yes" : "no");
    if (!*r) {
      std::printf("  witness: %s\n", witness.ToString(interner_).c_str());
    }
  }

  void Explain(const std::string& text) {
    std::istringstream in(text);
    std::string name;
    in >> name;
    const GoalQuery* q = FindQuery(name);
    if (q == nullptr) return;
    Result<ProvenanceResult> r = CertainAnswersWithProvenance(
        q->program, q->goal, views_, instance_, &interner_);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    if (r->answers.empty()) std::printf("  (no certain answers)\n");
    for (const ProvenancedAnswer& a : r->answers) {
      std::printf("  %s(", name.c_str());
      for (size_t i = 0; i < a.tuple.size(); ++i) {
        std::printf("%s%s", i ? ", " : "",
                    a.tuple[i].ToString(interner_).c_str());
      }
      std::printf(")  via");
      for (SymbolId s : a.sources) {
        std::printf(" %s", interner_.NameOf(s).c_str());
      }
      std::printf("\n");
    }
  }

  void Relevant(const std::string& text) {
    std::istringstream in(text);
    std::string name;
    in >> name;
    const GoalQuery* q = FindQuery(name);
    if (q == nullptr) return;
    Result<std::set<SymbolId>> r = RelevantSources(*q, views_, &interner_);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    if (r->empty()) {
      std::printf("  (no source affects this query's certain answers)\n");
      return;
    }
    std::printf(" ");
    for (SymbolId s : *r) std::printf(" %s", interner_.NameOf(s).c_str());
    std::printf("\n");
  }

  void Lossless(const std::string& text) {
    std::istringstream in(text);
    std::string name;
    in >> name;
    const GoalQuery* q = FindQuery(name);
    if (q == nullptr) return;
    Result<LosslessnessResult> r =
        CheckLossless(q->program, q->goal, views_, &interner_);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    std::printf(r->lossless
                    ? "yes — the plan is an equivalent rewriting\n"
                    : "no — certain answers can miss real answers\n");
  }

  void Minimize(const std::string& text) {
    std::istringstream in(text);
    std::string name;
    in >> name;
    const GoalQuery* q = FindQuery(name);
    if (q == nullptr) return;
    for (const Rule& rule : q->program.rules) {
      Result<Rule> core = MinimizeQuery(rule);
      if (!core.ok()) {
        std::printf("error: %s\n", core.status().ToString().c_str());
        return;
      }
      std::printf("  %s\n", core->ToString(interner_).c_str());
    }
  }

  void Show() {
    std::printf("views:\n%s", views_.ToString(interner_).c_str());
    for (const auto& [name, q] : queries_) {
      std::printf("query %s:\n%s", name.c_str(),
                  q.program.ToString(interner_).c_str());
    }
    if (instance_.TotalFacts() > 0) {
      std::printf("instance:\n%s", instance_.ToString(interner_).c_str());
    }
  }

  void Report(const Result<bool>& r, const char* qualifier) {
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
    } else {
      std::printf("%s (%s)\n", *r ? "yes" : "no", qualifier);
    }
  }

  bool interactive_;
  bool explain_ = false;
  Interner interner_;
  ViewSet views_;
  BindingPatterns patterns_;
  bool has_patterns_ = false;
  std::map<std::string, GoalQuery> queries_;
  Database instance_;
};

}  // namespace

int main(int argc, char** argv) {
  bool interactive = argc <= 1 || std::string(argv[1]) != "--batch";
  return Shell(interactive).Run();
}
