// The paper's running example (Examples 1-4): the car-sales mediated
// schema, its three sources, and the queries Q1, Q2, Q3. Reproduces every
// claim the paper makes about them, printing the constructed plans.

#include <cstdio>

#include "containment/comparison_containment.h"
#include "datalog/parser.h"
#include "relcont/certain_answers.h"
#include "relcont/relative_containment.h"
#include "rewriting/comparison_plans.h"
#include "rewriting/inverse_rules.h"

using namespace relcont;

namespace {

void Banner(const char* text) { std::printf("\n=== %s ===\n", text); }

const char* YesNo(bool b) { return b ? "yes" : "no"; }

}  // namespace

int main() {
  Interner interner;

  // Mediated schema: CarDesc(CarNo, Model, Color, Year),
  //                  Review(Model, Review, Rating).
  ViewSet views = *ParseViews(
      "redcars(CarNo, Model, Year) :- cardesc(CarNo, Model, red, Year).\n"
      "antiquecars(CarNo, Model, Year) :- "
      "cardesc(CarNo, Model, Color, Year), Year < 1970.\n"
      "caranddriver(Model, Review) :- review(Model, Review, 10).\n",
      &interner);
  std::printf("Sources (local-as-view descriptions):\n%s",
              views.ToString(interner).c_str());

  GoalQuery q1{*ParseProgram("q1(CarNo, Review) :- "
                             "cardesc(CarNo, Model, C, Y), "
                             "review(Model, Review, Rating).",
                             &interner),
               interner.Lookup("q1")};
  GoalQuery q2{*ParseProgram("q2(CarNo, Review) :- "
                             "cardesc(CarNo, Model, C, Y), "
                             "review(Model, Review, 10).",
                             &interner),
               interner.Lookup("q2")};
  GoalQuery q3{*ParseProgram("q3(CarNo, Review) :- "
                             "cardesc(CarNo, Model, C, Y), "
                             "review(Model, Review, 10), Y < 1970.",
                             &interner),
               interner.Lookup("q3")};

  Banner("Classical containment (Example 1)");
  auto classical = [&](const GoalQuery& a, const GoalQuery& b) {
    return *CqContainedComplete(a.program.rules[0], b.program.rules[0]);
  };
  std::printf("Q2 subset Q1: %s   Q1 subset Q2: %s\n",
              YesNo(classical(q2, q1)), YesNo(classical(q1, q2)));
  std::printf("Q3 subset Q2: %s   Q2 subset Q3: %s\n",
              YesNo(classical(q3, q2)), YesNo(classical(q2, q3)));

  Banner("Maximally-contained plan for Q1 (Example 2)");
  Program plan1 = *MaximallyContainedPlan(q1.program, views, &interner);
  std::printf("%s", plan1.ToString(interner).c_str());

  Banner("Function-term elimination and unfolding (Example 3)");
  UnionQuery ucq1 = *PlanToUnion(plan1, q1.goal, views, &interner);
  std::printf("%s", ucq1.ToString(interner).c_str());

  Banner("Relative containment (Example 1)");
  RelativeContainmentResult r12 =
      *RelativelyContained(q1, q2, views, &interner);
  RelativeContainmentResult r21 =
      *RelativelyContained(q2, q1, views, &interner);
  std::printf("Q1 relatively contained in Q2: %s\n", YesNo(r12.contained));
  std::printf("Q2 relatively contained in Q1: %s\n", YesNo(r21.contained));
  std::printf("  (reviews exist only for top-rated models, so the queries\n"
              "   are equivalent relative to the sources)\n");

  bool r13 = *RelativelyContainedViaExpansion(q1, q3, views, &interner);
  std::printf("Q1 relatively contained in Q3: %s\n", YesNo(r13));
  RelativeContainmentResult r31 =
      *RelativelyContainedWithComparisons(q3, q1, views, &interner);
  std::printf("Q3 relatively contained in Q1: %s\n", YesNo(r31.contained));

  Banner("Comparison-aware plan for Q3 (Example 4)");
  UnionQuery plan3 =
      *ComparisonAwarePlan(q3.program, q3.goal, views, &interner);
  std::printf("%s", plan3.ToString(interner).c_str());
  std::printf("(the RedCars disjunct carries Year < 1970 explicitly;\n"
              " AntiqueCars already guarantees it)\n");

  Banner("Ablation: drop the RedCars source");
  ViewSet fewer = *ParseViews(
      "antiquecars(CarNo, Model, Year) :- "
      "cardesc(CarNo, Model, Color, Year), Year < 1970.\n"
      "caranddriver(Model, Review) :- review(Model, Review, 10).\n",
      &interner);
  bool r13_fewer = *RelativelyContainedViaExpansion(q1, q3, fewer, &interner);
  std::printf("Q1 relatively contained in Q3 without RedCars: %s\n",
              YesNo(r13_fewer));

  Banner("Certain answers on a concrete source instance");
  Database instance = *ParseDatabase(
      "redcars(1, corolla, 1990).\n"
      "antiquecars(2, model_t, 1920).\n"
      "caranddriver(corolla, 'a great car').\n"
      "caranddriver(model_t, 'the classic').\n",
      &interner);
  std::vector<Tuple> answers =
      *CertainAnswers(q1.program, q1.goal, views, instance, &interner);
  for (const Tuple& t : answers) {
    std::printf("  q1(%s, %s)\n", t[0].ToString(interner).c_str(),
                t[1].ToString(interner).c_str());
  }
  return 0;
}
