
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binding/adornment.cc" "src/CMakeFiles/relcont.dir/binding/adornment.cc.o" "gcc" "src/CMakeFiles/relcont.dir/binding/adornment.cc.o.d"
  "/root/repo/src/binding/dom_containment.cc" "src/CMakeFiles/relcont.dir/binding/dom_containment.cc.o" "gcc" "src/CMakeFiles/relcont.dir/binding/dom_containment.cc.o.d"
  "/root/repo/src/binding/dom_plan.cc" "src/CMakeFiles/relcont.dir/binding/dom_plan.cc.o" "gcc" "src/CMakeFiles/relcont.dir/binding/dom_plan.cc.o.d"
  "/root/repo/src/binding/sound_plan.cc" "src/CMakeFiles/relcont.dir/binding/sound_plan.cc.o" "gcc" "src/CMakeFiles/relcont.dir/binding/sound_plan.cc.o.d"
  "/root/repo/src/common/interner.cc" "src/CMakeFiles/relcont.dir/common/interner.cc.o" "gcc" "src/CMakeFiles/relcont.dir/common/interner.cc.o.d"
  "/root/repo/src/common/rational.cc" "src/CMakeFiles/relcont.dir/common/rational.cc.o" "gcc" "src/CMakeFiles/relcont.dir/common/rational.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/relcont.dir/common/status.cc.o" "gcc" "src/CMakeFiles/relcont.dir/common/status.cc.o.d"
  "/root/repo/src/constraints/order_constraints.cc" "src/CMakeFiles/relcont.dir/constraints/order_constraints.cc.o" "gcc" "src/CMakeFiles/relcont.dir/constraints/order_constraints.cc.o.d"
  "/root/repo/src/containment/canonical.cc" "src/CMakeFiles/relcont.dir/containment/canonical.cc.o" "gcc" "src/CMakeFiles/relcont.dir/containment/canonical.cc.o.d"
  "/root/repo/src/containment/comparison_containment.cc" "src/CMakeFiles/relcont.dir/containment/comparison_containment.cc.o" "gcc" "src/CMakeFiles/relcont.dir/containment/comparison_containment.cc.o.d"
  "/root/repo/src/containment/cq_containment.cc" "src/CMakeFiles/relcont.dir/containment/cq_containment.cc.o" "gcc" "src/CMakeFiles/relcont.dir/containment/cq_containment.cc.o.d"
  "/root/repo/src/containment/expansion.cc" "src/CMakeFiles/relcont.dir/containment/expansion.cc.o" "gcc" "src/CMakeFiles/relcont.dir/containment/expansion.cc.o.d"
  "/root/repo/src/containment/homomorphism.cc" "src/CMakeFiles/relcont.dir/containment/homomorphism.cc.o" "gcc" "src/CMakeFiles/relcont.dir/containment/homomorphism.cc.o.d"
  "/root/repo/src/containment/minimize.cc" "src/CMakeFiles/relcont.dir/containment/minimize.cc.o" "gcc" "src/CMakeFiles/relcont.dir/containment/minimize.cc.o.d"
  "/root/repo/src/datalog/atom.cc" "src/CMakeFiles/relcont.dir/datalog/atom.cc.o" "gcc" "src/CMakeFiles/relcont.dir/datalog/atom.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/CMakeFiles/relcont.dir/datalog/parser.cc.o" "gcc" "src/CMakeFiles/relcont.dir/datalog/parser.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/CMakeFiles/relcont.dir/datalog/program.cc.o" "gcc" "src/CMakeFiles/relcont.dir/datalog/program.cc.o.d"
  "/root/repo/src/datalog/rule.cc" "src/CMakeFiles/relcont.dir/datalog/rule.cc.o" "gcc" "src/CMakeFiles/relcont.dir/datalog/rule.cc.o.d"
  "/root/repo/src/datalog/substitution.cc" "src/CMakeFiles/relcont.dir/datalog/substitution.cc.o" "gcc" "src/CMakeFiles/relcont.dir/datalog/substitution.cc.o.d"
  "/root/repo/src/datalog/term.cc" "src/CMakeFiles/relcont.dir/datalog/term.cc.o" "gcc" "src/CMakeFiles/relcont.dir/datalog/term.cc.o.d"
  "/root/repo/src/datalog/unfold.cc" "src/CMakeFiles/relcont.dir/datalog/unfold.cc.o" "gcc" "src/CMakeFiles/relcont.dir/datalog/unfold.cc.o.d"
  "/root/repo/src/eval/database.cc" "src/CMakeFiles/relcont.dir/eval/database.cc.o" "gcc" "src/CMakeFiles/relcont.dir/eval/database.cc.o.d"
  "/root/repo/src/eval/evaluator.cc" "src/CMakeFiles/relcont.dir/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/relcont.dir/eval/evaluator.cc.o.d"
  "/root/repo/src/relcont/binding_containment.cc" "src/CMakeFiles/relcont.dir/relcont/binding_containment.cc.o" "gcc" "src/CMakeFiles/relcont.dir/relcont/binding_containment.cc.o.d"
  "/root/repo/src/relcont/certain_answers.cc" "src/CMakeFiles/relcont.dir/relcont/certain_answers.cc.o" "gcc" "src/CMakeFiles/relcont.dir/relcont/certain_answers.cc.o.d"
  "/root/repo/src/relcont/cwa.cc" "src/CMakeFiles/relcont.dir/relcont/cwa.cc.o" "gcc" "src/CMakeFiles/relcont.dir/relcont/cwa.cc.o.d"
  "/root/repo/src/relcont/decide.cc" "src/CMakeFiles/relcont.dir/relcont/decide.cc.o" "gcc" "src/CMakeFiles/relcont.dir/relcont/decide.cc.o.d"
  "/root/repo/src/relcont/gav.cc" "src/CMakeFiles/relcont.dir/relcont/gav.cc.o" "gcc" "src/CMakeFiles/relcont.dir/relcont/gav.cc.o.d"
  "/root/repo/src/relcont/pi2p_reduction.cc" "src/CMakeFiles/relcont.dir/relcont/pi2p_reduction.cc.o" "gcc" "src/CMakeFiles/relcont.dir/relcont/pi2p_reduction.cc.o.d"
  "/root/repo/src/relcont/relative_containment.cc" "src/CMakeFiles/relcont.dir/relcont/relative_containment.cc.o" "gcc" "src/CMakeFiles/relcont.dir/relcont/relative_containment.cc.o.d"
  "/root/repo/src/relcont/workload.cc" "src/CMakeFiles/relcont.dir/relcont/workload.cc.o" "gcc" "src/CMakeFiles/relcont.dir/relcont/workload.cc.o.d"
  "/root/repo/src/rewriting/bucket.cc" "src/CMakeFiles/relcont.dir/rewriting/bucket.cc.o" "gcc" "src/CMakeFiles/relcont.dir/rewriting/bucket.cc.o.d"
  "/root/repo/src/rewriting/comparison_plans.cc" "src/CMakeFiles/relcont.dir/rewriting/comparison_plans.cc.o" "gcc" "src/CMakeFiles/relcont.dir/rewriting/comparison_plans.cc.o.d"
  "/root/repo/src/rewriting/inverse_rules.cc" "src/CMakeFiles/relcont.dir/rewriting/inverse_rules.cc.o" "gcc" "src/CMakeFiles/relcont.dir/rewriting/inverse_rules.cc.o.d"
  "/root/repo/src/rewriting/losslessness.cc" "src/CMakeFiles/relcont.dir/rewriting/losslessness.cc.o" "gcc" "src/CMakeFiles/relcont.dir/rewriting/losslessness.cc.o.d"
  "/root/repo/src/rewriting/views.cc" "src/CMakeFiles/relcont.dir/rewriting/views.cc.o" "gcc" "src/CMakeFiles/relcont.dir/rewriting/views.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
