# Empty dependencies file for relcont.
# This may be replaced when dependencies are built.
