file(REMOVE_RECURSE
  "librelcont.a"
)
