# Empty dependencies file for bench_binding_patterns.
# This may be replaced when dependencies are built.
