file(REMOVE_RECURSE
  "CMakeFiles/bench_binding_patterns.dir/bench_binding_patterns.cc.o"
  "CMakeFiles/bench_binding_patterns.dir/bench_binding_patterns.cc.o.d"
  "bench_binding_patterns"
  "bench_binding_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_binding_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
