file(REMOVE_RECURSE
  "CMakeFiles/bench_relative_containment.dir/bench_relative_containment.cc.o"
  "CMakeFiles/bench_relative_containment.dir/bench_relative_containment.cc.o.d"
  "bench_relative_containment"
  "bench_relative_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relative_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
