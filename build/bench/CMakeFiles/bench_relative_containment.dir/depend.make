# Empty dependencies file for bench_relative_containment.
# This may be replaced when dependencies are built.
