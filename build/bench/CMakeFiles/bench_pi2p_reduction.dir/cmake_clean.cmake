file(REMOVE_RECURSE
  "CMakeFiles/bench_pi2p_reduction.dir/bench_pi2p_reduction.cc.o"
  "CMakeFiles/bench_pi2p_reduction.dir/bench_pi2p_reduction.cc.o.d"
  "bench_pi2p_reduction"
  "bench_pi2p_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pi2p_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
