# Empty dependencies file for bench_pi2p_reduction.
# This may be replaced when dependencies are built.
