# Empty dependencies file for bench_example1.
# This may be replaced when dependencies are built.
