file(REMOVE_RECURSE
  "CMakeFiles/bench_example1.dir/bench_example1.cc.o"
  "CMakeFiles/bench_example1.dir/bench_example1.cc.o.d"
  "bench_example1"
  "bench_example1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
