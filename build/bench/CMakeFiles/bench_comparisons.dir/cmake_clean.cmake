file(REMOVE_RECURSE
  "CMakeFiles/bench_comparisons.dir/bench_comparisons.cc.o"
  "CMakeFiles/bench_comparisons.dir/bench_comparisons.cc.o.d"
  "bench_comparisons"
  "bench_comparisons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comparisons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
