file(REMOVE_RECURSE
  "CMakeFiles/bench_eval.dir/bench_eval.cc.o"
  "CMakeFiles/bench_eval.dir/bench_eval.cc.o.d"
  "bench_eval"
  "bench_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
