# Empty compiler generated dependencies file for bench_containment_core.
# This may be replaced when dependencies are built.
