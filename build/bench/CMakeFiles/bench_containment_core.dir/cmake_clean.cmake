file(REMOVE_RECURSE
  "CMakeFiles/bench_containment_core.dir/bench_containment_core.cc.o"
  "CMakeFiles/bench_containment_core.dir/bench_containment_core.cc.o.d"
  "bench_containment_core"
  "bench_containment_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_containment_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
