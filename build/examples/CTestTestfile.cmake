# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "sh" "-c" "/root/repo/build/examples/quickstart | grep -q 'ada, research, engine'")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_car_catalog "sh" "-c" "/root/repo/build/examples/car_catalog | grep -q 'Q1 relatively contained in Q2: yes'")
set_tests_properties(example_car_catalog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_car_catalog_ablation "sh" "-c" "/root/repo/build/examples/car_catalog | grep -q 'without RedCars: yes'")
set_tests_properties(example_car_catalog_ablation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bookstore "sh" "-c" "/root/repo/build/examples/bookstore_access_patterns | grep -q 'chained'")
set_tests_properties(example_bookstore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_coverage_advisor "sh" "-c" "/root/repo/build/examples/coverage_advisor | grep -q 'only for the current sources'")
set_tests_properties(example_coverage_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shell_contained "sh" "-c" "printf 'view v(X) :- p(X, Y).\\nquery a(X) :- p(X, Y).\\nquery b(X) :- p(X, Z).\\ncontained a b\\nquit\\n' | /root/repo/build/examples/relcont_shell --batch | grep -q '^yes'")
set_tests_properties(example_shell_contained PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shell_explain "sh" "-c" "printf 'view v(X) :- p(X, X).\\nfact v(c).\\nquery a(X) :- p(X, Y).\\nexplain a\\nquit\\n' | /root/repo/build/examples/relcont_shell --batch | grep -q 'via v'")
set_tests_properties(example_shell_explain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
