# Empty compiler generated dependencies file for bookstore_access_patterns.
# This may be replaced when dependencies are built.
