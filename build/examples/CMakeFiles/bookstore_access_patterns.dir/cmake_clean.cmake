file(REMOVE_RECURSE
  "CMakeFiles/bookstore_access_patterns.dir/bookstore_access_patterns.cpp.o"
  "CMakeFiles/bookstore_access_patterns.dir/bookstore_access_patterns.cpp.o.d"
  "bookstore_access_patterns"
  "bookstore_access_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore_access_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
