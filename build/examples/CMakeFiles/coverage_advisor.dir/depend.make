# Empty dependencies file for coverage_advisor.
# This may be replaced when dependencies are built.
