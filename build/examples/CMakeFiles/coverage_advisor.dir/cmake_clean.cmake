file(REMOVE_RECURSE
  "CMakeFiles/coverage_advisor.dir/coverage_advisor.cpp.o"
  "CMakeFiles/coverage_advisor.dir/coverage_advisor.cpp.o.d"
  "coverage_advisor"
  "coverage_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
