# Empty compiler generated dependencies file for car_catalog.
# This may be replaced when dependencies are built.
