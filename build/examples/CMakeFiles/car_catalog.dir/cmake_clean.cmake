file(REMOVE_RECURSE
  "CMakeFiles/car_catalog.dir/car_catalog.cpp.o"
  "CMakeFiles/car_catalog.dir/car_catalog.cpp.o.d"
  "car_catalog"
  "car_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/car_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
