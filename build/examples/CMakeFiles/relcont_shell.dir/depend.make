# Empty dependencies file for relcont_shell.
# This may be replaced when dependencies are built.
