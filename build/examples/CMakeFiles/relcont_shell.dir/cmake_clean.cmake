file(REMOVE_RECURSE
  "CMakeFiles/relcont_shell.dir/relcont_shell.cpp.o"
  "CMakeFiles/relcont_shell.dir/relcont_shell.cpp.o.d"
  "relcont_shell"
  "relcont_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relcont_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
