file(REMOVE_RECURSE
  "CMakeFiles/comparison_plans_test.dir/comparison_plans_test.cc.o"
  "CMakeFiles/comparison_plans_test.dir/comparison_plans_test.cc.o.d"
  "comparison_plans_test"
  "comparison_plans_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_plans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
