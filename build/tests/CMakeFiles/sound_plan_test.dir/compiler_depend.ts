# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sound_plan_test.
