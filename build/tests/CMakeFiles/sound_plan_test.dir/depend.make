# Empty dependencies file for sound_plan_test.
# This may be replaced when dependencies are built.
