file(REMOVE_RECURSE
  "CMakeFiles/sound_plan_test.dir/sound_plan_test.cc.o"
  "CMakeFiles/sound_plan_test.dir/sound_plan_test.cc.o.d"
  "sound_plan_test"
  "sound_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sound_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
