# Empty dependencies file for rewriting_extensions_test.
# This may be replaced when dependencies are built.
