file(REMOVE_RECURSE
  "CMakeFiles/rewriting_extensions_test.dir/rewriting_extensions_test.cc.o"
  "CMakeFiles/rewriting_extensions_test.dir/rewriting_extensions_test.cc.o.d"
  "rewriting_extensions_test"
  "rewriting_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewriting_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
