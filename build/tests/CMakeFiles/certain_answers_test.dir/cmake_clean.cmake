file(REMOVE_RECURSE
  "CMakeFiles/certain_answers_test.dir/certain_answers_test.cc.o"
  "CMakeFiles/certain_answers_test.dir/certain_answers_test.cc.o.d"
  "certain_answers_test"
  "certain_answers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certain_answers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
