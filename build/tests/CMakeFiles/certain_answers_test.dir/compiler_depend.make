# Empty compiler generated dependencies file for certain_answers_test.
# This may be replaced when dependencies are built.
