# Empty dependencies file for decide_test.
# This may be replaced when dependencies are built.
