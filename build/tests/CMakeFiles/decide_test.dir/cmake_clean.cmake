file(REMOVE_RECURSE
  "CMakeFiles/decide_test.dir/decide_test.cc.o"
  "CMakeFiles/decide_test.dir/decide_test.cc.o.d"
  "decide_test"
  "decide_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decide_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
