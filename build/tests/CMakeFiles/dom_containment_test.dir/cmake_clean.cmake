file(REMOVE_RECURSE
  "CMakeFiles/dom_containment_test.dir/dom_containment_test.cc.o"
  "CMakeFiles/dom_containment_test.dir/dom_containment_test.cc.o.d"
  "dom_containment_test"
  "dom_containment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dom_containment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
