# Empty compiler generated dependencies file for dom_containment_test.
# This may be replaced when dependencies are built.
