file(REMOVE_RECURSE
  "CMakeFiles/one_recursive_test.dir/one_recursive_test.cc.o"
  "CMakeFiles/one_recursive_test.dir/one_recursive_test.cc.o.d"
  "one_recursive_test"
  "one_recursive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_recursive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
