# Empty dependencies file for one_recursive_test.
# This may be replaced when dependencies are built.
